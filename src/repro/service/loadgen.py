"""Load generator for the sensitivity query service.

Drives a query mix (survives / sensitivity / replacement_edge /
entry_threshold) from many concurrent clients and reports throughput,
shed rate and latency percentiles. Two transports behind one engine:

* ``run_inprocess(service, ...)`` — drives a
  :class:`~repro.service.server.SensitivityService` directly (the E13
  benchmark and tests);
* ``run_tcp(host, port, ...)`` — JSON-lines over ``clients`` real
  connections (the CI smoke step), with connect retries so it can be
  started alongside the server.

CLI (used by CI)::

    python -m repro.service.loadgen --port 7464 --queries 3000 \
        --clients 16 --shutdown

Exit status is non-zero when nothing was served or any transport-level
error occurred (wrong-edge-kind responses are the service answering
correctly and are tallied separately).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["QueryPlan", "make_plan", "run_inprocess", "run_tcp", "main"]

#: op → relative frequency in the default mix.
DEFAULT_MIX = (
    ("survives", 0.55),
    ("sensitivity", 0.25),
    ("replacement_edge", 0.10),
    ("entry_threshold", 0.10),
)


class QueryPlan:
    """A deterministic pre-drawn query stream over named instances."""

    def __init__(self, ops: List[str], instances: List[str],
                 edges: np.ndarray, weights: np.ndarray):
        self.ops = ops
        self.instances = instances
        self.edges = edges
        self.weights = weights

    def __len__(self) -> int:
        return len(self.ops)

    def request(self, i: int) -> Dict:
        req = {"op": self.ops[i], "instance": self.instances[i],
               "edge": int(self.edges[i])}
        if self.ops[i] == "survives":
            req["weight"] = float(self.weights[i])
        return req


def make_plan(instances: Dict[str, int], total: int,
              mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
              seed: int = 0) -> QueryPlan:
    """Draw ``total`` queries over ``{instance name: edge count}``.

    Weights for ``survives`` scatter in ``[0, 2]`` — with the
    unit-interval weight distributions of the generators both outcomes
    are exercised.
    """
    rng = np.random.default_rng(seed)
    names = sorted(instances)
    ops_pool = [op for op, _ in mix]
    probs = np.array([p for _, p in mix], dtype=np.float64)
    probs /= probs.sum()
    ops = [ops_pool[i] for i in rng.choice(len(ops_pool), size=total, p=probs)]
    who = [names[i] for i in rng.integers(0, len(names), size=total)]
    edges = np.array([rng.integers(0, instances[w]) for w in who],
                     dtype=np.int64)
    weights = rng.uniform(0.0, 2.0, size=total)
    return QueryPlan(ops=ops, instances=who, edges=edges, weights=weights)


class LoadStats:
    """What one load run observed."""

    def __init__(self):
        self.sent = 0
        self.answered = 0
        self.shed = 0
        self.type_errors = 0
        self.errors = 0
        self.wall_s = 0.0
        self.latencies: List[float] = []

    @property
    def qps(self) -> float:
        return self.answered / self.wall_s if self.wall_s > 0 else 0.0

    def tally(self, resp: Dict, latency_s: float) -> None:
        self.sent += 1
        if resp.get("ok"):
            self.answered += 1
            self.latencies.append(latency_s)
        elif resp.get("shed"):
            self.shed += 1
        elif resp.get("error_kind") == "type":
            self.type_errors += 1   # service correctly refused the op kind
            self.answered += 1
            self.latencies.append(latency_s)
        else:
            self.errors += 1

    def summary(self) -> Dict:
        lats = np.asarray(self.latencies, dtype=np.float64)
        return {
            "sent": self.sent,
            "answered": self.answered,
            "shed": self.shed,
            "type_errors": self.type_errors,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 4),
            "qps": round(self.qps, 1),
            "p50_ms": round(float(np.percentile(lats, 50)) * 1e3, 3)
            if len(lats) else None,
            "p99_ms": round(float(np.percentile(lats, 99)) * 1e3, 3)
            if len(lats) else None,
        }


async def _drive(submit, plan: QueryPlan, clients: int) -> LoadStats:
    """Fan ``plan`` over ``clients`` concurrent workers via ``submit``."""
    stats = LoadStats()
    counter = {"next": 0}

    async def worker(wid: int) -> None:
        while True:
            i = counter["next"]
            if i >= len(plan):
                return
            counter["next"] = i + 1
            t0 = time.perf_counter()
            resp = await submit(wid, plan.request(i))
            stats.tally(resp, time.perf_counter() - t0)

    t0 = time.perf_counter()
    await asyncio.gather(*(worker(w) for w in range(max(1, clients))))
    stats.wall_s = time.perf_counter() - t0
    return stats


async def run_inprocess(service, plan: QueryPlan, clients: int = 64,
                        pipeline: int = 1) -> LoadStats:
    """Drive an in-process service with concurrent client coroutines.

    ``pipeline=1`` awaits each response before sending the next query
    (strictly serial clients, one response dict per query).
    ``pipeline > 1`` keeps that many point queries in flight per
    client via :meth:`~repro.service.server.SensitivityService.
    submit_nowait` — the multiplexed-client mode the E13 benchmark
    uses. Latency percentiles then live in the *service* metrics
    (per-query submit→dispatch time); the loadgen-side reservoir stays
    empty.
    """
    if pipeline <= 1:
        async def submit(_wid: int, req: Dict) -> Dict:
            return await service.handle_request(req)

        return await _drive(submit, plan, clients)

    from .batching import ServiceOverloaded

    stats = LoadStats()
    counter = {"next": 0}
    total = len(plan)
    ops, edges, weights, who = (plan.ops, plan.edges, plan.weights,
                                plan.instances)

    t0 = time.perf_counter()
    # client-side routing table, resolved vectorised up front (the
    # cluster-client pattern: shard boundaries are static per
    # generation, so per-query routing is one array lookup)
    target = np.empty(total, dtype=object)
    who_arr = np.array(who)
    for name in set(who):
        inst = service.instances[name]
        bounds = np.array([s.edge_lo for s in inst.specs[1:]],
                          dtype=np.int64)
        mask = who_arr == name
        shard_of = np.searchsorted(bounds, edges[mask], side="right")
        batchers = inst.batchers
        target[mask] = [batchers[s] for s in shard_of]

    async def worker() -> None:
        while True:
            i0 = counter["next"]
            if i0 >= total:
                return
            i1 = min(i0 + pipeline, total)
            counter["next"] = i1
            futs = []
            for i in range(i0, i1):
                op = ops[i]
                w = float(weights[i]) if op == "survives" else None
                try:
                    futs.append(target[i].submit(op, edges[i], w))
                except ServiceOverloaded:
                    stats.sent += 1
                    stats.shed += 1
            for fut in futs:
                if not fut.done():
                    await fut
                _gen, ok, _value, error_kind = fut.result()
                stats.sent += 1
                if ok:
                    stats.answered += 1
                elif error_kind == "type":
                    stats.type_errors += 1
                    stats.answered += 1
                else:
                    stats.errors += 1

    await asyncio.gather(*(worker() for _ in range(max(1, clients))))
    stats.wall_s = time.perf_counter() - t0
    return stats


async def run_tcp(host: str, port: int, plan: QueryPlan, clients: int = 16,
                  connect_timeout_s: float = 15.0,
                  shutdown: bool = False) -> LoadStats:
    """Drive a remote service over ``clients`` JSON-lines connections."""
    conns = []
    deadline = time.perf_counter() + connect_timeout_s
    for _ in range(max(1, clients)):
        while True:
            try:
                conns.append(await asyncio.open_connection(host, port))
                break
            except OSError:
                if time.perf_counter() >= deadline:
                    raise
                await asyncio.sleep(0.2)

    locks = [asyncio.Lock() for _ in conns]

    async def submit(wid: int, req: Dict) -> Dict:
        reader, writer = conns[wid % len(conns)]
        async with locks[wid % len(conns)]:  # one request in flight per conn
            writer.write((json.dumps(req) + "\n").encode())
            await writer.drain()
            line = await reader.readline()
        if not line:
            return {"ok": False, "error": "connection closed"}
        return json.loads(line)

    try:
        stats = await _drive(submit, plan, len(conns))
        if shutdown:
            await submit(0, {"op": "shutdown"})
    finally:
        for _, writer in conns:
            writer.close()
    return stats


async def _main_async(args) -> int:
    reader, writer = None, None
    deadline = time.perf_counter() + args.connect_timeout
    while True:  # discover instances (retrying while the server boots)
        try:
            reader, writer = await asyncio.open_connection(args.host,
                                                           args.port)
            break
        except OSError:
            if time.perf_counter() >= deadline:
                print(f"could not connect to {args.host}:{args.port}",
                      file=sys.stderr)
                return 1
            await asyncio.sleep(0.2)
    writer.write(b'{"op": "instances"}\n')
    # a server that accepts but never answers (wedged event loop, wrong
    # protocol on the port) must not hang the client forever: bound the
    # handshake read by the same budget as the connection itself. A
    # reset mid-handshake (server slammed the door) is the same story.
    try:
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(),
                                      args.connect_timeout)
    except asyncio.TimeoutError:
        print(f"server at {args.host}:{args.port} accepted the connection "
              f"but did not answer the instances handshake within "
              f"{args.connect_timeout:.0f}s", file=sys.stderr)
        writer.close()
        return 1
    except OSError:
        line = b""  # dropped mid-handshake: same as closing cleanly
    writer.close()
    if not line:
        print(f"server at {args.host}:{args.port} closed the connection "
              f"during the instances handshake", file=sys.stderr)
        return 1
    desc = json.loads(line)
    if not desc.get("ok"):
        print(f"instances query failed: {desc}", file=sys.stderr)
        return 1
    instances = {name: info["m"] for name, info in desc["result"].items()}
    print(f"instances: "
          f"{', '.join(f'{k} (m={v})' for k, v in sorted(instances.items()))}")

    plan = make_plan(instances, args.queries, seed=args.seed)
    stats = await run_tcp(args.host, args.port, plan, clients=args.clients,
                          connect_timeout_s=args.connect_timeout,
                          shutdown=args.shutdown)
    s = stats.summary()
    print(f"served {s['answered']:,} of {s['sent']:,} queries in "
          f"{s['wall_s']:.2f}s ({s['qps']:,.0f} qps), "
          f"shed {s['shed']}, transport errors {s['errors']}, "
          f"p50 {s['p50_ms']}ms p99 {s['p99_ms']}ms")
    ok = s["answered"] > 0 and s["qps"] > 0 and s["errors"] == 0
    return 0 if ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        description="load-generate against a running repro serve process"
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=7464)
    ap.add_argument("--queries", type=int, default=5000)
    ap.add_argument("--clients", type=int, default=16)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--connect-timeout", type=float, default=15.0,
                    help="seconds to retry the first connection")
    ap.add_argument("--shutdown", action="store_true",
                    help="send a shutdown op after the run")
    args = ap.parse_args(argv)
    return asyncio.run(_main_async(args))


if __name__ == "__main__":
    raise SystemExit(main())
