"""Load generator for the sensitivity query service.

Drives a query mix (survives / sensitivity / replacement_edge /
entry_threshold) from many concurrent clients and reports throughput,
shed rate and latency percentiles. Two transports behind one engine:

* ``run_inprocess(service, ...)`` — drives a
  :class:`~repro.service.server.SensitivityService` directly (the E13
  benchmark and tests);
* ``run_tcp(host, port, ...)`` — JSON-lines over ``clients`` real
  connections (the CI smoke step), with connect retries so it can be
  started alongside the server. ``pipeline > 1`` keeps that many
  requests in flight per connection — the server answers in request
  order, so responses correlate positionally (no request ids).
  ``wire_mode="binary"`` switches the query storm to the binary
  columnar protocol (:mod:`repro.service.wire`): each connection
  negotiates symbols via the ``hello`` escape frame, the whole plan is
  pre-encoded into one packed 16-byte-record array, and each chunk is
  a single buffer write answered by ``16 * chunk`` bytes read back and
  tallied vectorised. Control side-channels (handshake, shutdown,
  churn, live-update) stay JSON either way.

Driver-side encode time (``json.dumps`` or the columnar packing) is
measured separately from the round trips and reported as ``encode_s``
— it is loadgen CPU, not server latency, and the latency percentiles
exclude it.

One driver process saturates around one core of ``json.dumps``; the
``--procs N`` mode forks N whole loadgen processes (same explicit
multiprocessing context as the compute pool), each driving its own
seeded slice of the plan, and merges their :class:`LoadStats` through
a summary pipe — the client-side mirror of the router's worker fleet.

``--live-update`` exercises the zero-downtime path while the storm is
running: a side connection probes tree edges until one update reports
``action == "rebuilt"`` (bridges report ``patched`` and are skipped),
which on a router deployment forces a digest-shipped generation swap
under load. The run fails if any query fails around the swap.

``--churn RATE`` streams *structural* batches (wire op
``update_batch``: add / reprice / remove cycles of heavy non-tree
edges) at RATE batches per second on a side connection while the query
storm runs — every applied batch is a generation swap under load, and
the run fails unless at least two swaps landed with zero errors.

``--chaos SPEC`` arms a deterministic fault-injection plan on the
router (wire op ``chaos``, grammar in :mod:`repro.service.chaos`)
right after the instances handshake, so the storm runs over scheduled
worker kills / severed links / delays. ``--expect-respawns N`` then
polls the router's supervisor metrics after the storm until at least
``N`` restarts have completed and no worker is still mid-recovery —
the run fails if recovery does not land within ``--recovery-timeout``.
Together they are the CI chaos-smoke: kill a worker mid-storm, demand
zero failed reads and a finished respawn.

CLI (used by CI)::

    python -m repro.service.loadgen --port 7464 --queries 3000 \
        --clients 16 --shutdown
    python -m repro.service.loadgen --port 7464 --queries 3000 \
        --clients 4 --pipeline 64 --wire binary --shutdown
    python -m repro.service.loadgen --port 7465 --queries 5000 \
        --procs 2 --pipeline 32 --live-update --shutdown
    python -m repro.service.loadgen --port 7465 --queries 5000 \
        --churn 20 --churn-batch 8 --shutdown
    python -m repro.service.loadgen --port 7465 --queries 8000 \
        --chaos kill:1@0.5 --expect-respawns 1 --shutdown

Exit status is non-zero when nothing was served or any transport-level
error occurred (wrong-edge-kind responses are the service answering
correctly and are tallied separately).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import wire

__all__ = ["QueryPlan", "make_plan", "run_inprocess", "run_tcp",
           "run_procs", "live_update", "churn_storm", "arm_chaos",
           "await_recovery", "main"]

#: op → relative frequency in the default mix.
DEFAULT_MIX = (
    ("survives", 0.55),
    ("sensitivity", 0.25),
    ("replacement_edge", 0.10),
    ("entry_threshold", 0.10),
)


class QueryPlan:
    """A deterministic pre-drawn query stream over named instances."""

    def __init__(self, ops: List[str], instances: List[str],
                 edges: np.ndarray, weights: np.ndarray):
        self.ops = ops
        self.instances = instances
        self.edges = edges
        self.weights = weights

    def __len__(self) -> int:
        return len(self.ops)

    def request(self, i: int) -> Dict:
        req = {"op": self.ops[i], "instance": self.instances[i],
               "edge": int(self.edges[i])}
        if self.ops[i] == "survives":
            req["weight"] = float(self.weights[i])
        return req


def make_plan(instances: Dict[str, int], total: int,
              mix: Sequence[Tuple[str, float]] = DEFAULT_MIX,
              seed: int = 0) -> QueryPlan:
    """Draw ``total`` queries over ``{instance name: edge count}``.

    Weights for ``survives`` scatter in ``[0, 2]`` — with the
    unit-interval weight distributions of the generators both outcomes
    are exercised.
    """
    rng = np.random.default_rng(seed)
    names = sorted(instances)
    ops_pool = [op for op, _ in mix]
    probs = np.array([p for _, p in mix], dtype=np.float64)
    probs /= probs.sum()
    ops = [ops_pool[i] for i in rng.choice(len(ops_pool), size=total, p=probs)]
    who = [names[i] for i in rng.integers(0, len(names), size=total)]
    edges = np.array([rng.integers(0, instances[w]) for w in who],
                     dtype=np.int64)
    weights = rng.uniform(0.0, 2.0, size=total)
    return QueryPlan(ops=ops, instances=who, edges=edges, weights=weights)


class LoadStats:
    """What one load run observed."""

    def __init__(self):
        self.sent = 0
        self.answered = 0
        self.shed = 0
        self.type_errors = 0
        self.errors = 0
        self.wall_s = 0.0
        self.encode_s = 0.0   # driver-side encode CPU, outside the RTT clock
        self.latencies: List[float] = []

    @property
    def qps(self) -> float:
        return self.answered / self.wall_s if self.wall_s > 0 else 0.0

    def tally(self, resp: Dict, latency_s: float) -> None:
        self.sent += 1
        if resp.get("ok"):
            self.answered += 1
            self.latencies.append(latency_s)
        elif resp.get("shed"):
            self.shed += 1
        elif resp.get("error_kind") == "type":
            self.type_errors += 1   # service correctly refused the op kind
            self.answered += 1
            self.latencies.append(latency_s)
        else:
            self.errors += 1

    def summary(self) -> Dict:
        lats = np.asarray(self.latencies, dtype=np.float64)
        return {
            "sent": self.sent,
            "answered": self.answered,
            "shed": self.shed,
            "type_errors": self.type_errors,
            "errors": self.errors,
            "wall_s": round(self.wall_s, 4),
            "encode_s": round(self.encode_s, 4),
            "qps": round(self.qps, 1),
            "p50_ms": round(float(np.percentile(lats, 50)) * 1e3, 3)
            if len(lats) else None,
            "p99_ms": round(float(np.percentile(lats, 99)) * 1e3, 3)
            if len(lats) else None,
        }

    @classmethod
    def merge(cls, parts: Sequence["LoadStats"]) -> "LoadStats":
        """Fold concurrent runs into one: counters sum, walls overlap.

        The parts ran side by side, so the merged wall is the longest
        part (aggregate qps = total answered / overlapped wall), and
        the latency pools concatenate — the same percentile-of-pooled
        rule as :func:`~repro.service.metrics.merged_latency`.
        """
        out = cls()
        for s in parts:
            out.sent += s.sent
            out.answered += s.answered
            out.shed += s.shed
            out.type_errors += s.type_errors
            out.errors += s.errors
            out.wall_s = max(out.wall_s, s.wall_s)
            out.encode_s += s.encode_s  # CPU time: sums across drivers
            out.latencies.extend(s.latencies)
        return out


async def _drive(submit, plan: QueryPlan, clients: int) -> LoadStats:
    """Fan ``plan`` over ``clients`` concurrent workers via ``submit``."""
    stats = LoadStats()
    counter = {"next": 0}

    async def worker(wid: int) -> None:
        while True:
            i = counter["next"]
            if i >= len(plan):
                return
            counter["next"] = i + 1
            t0 = time.perf_counter()
            resp = await submit(wid, plan.request(i))
            stats.tally(resp, time.perf_counter() - t0)

    t0 = time.perf_counter()
    await asyncio.gather(*(worker(w) for w in range(max(1, clients))))
    stats.wall_s = time.perf_counter() - t0
    return stats


async def run_inprocess(service, plan: QueryPlan, clients: int = 64,
                        pipeline: int = 1) -> LoadStats:
    """Drive an in-process service with concurrent client coroutines.

    ``pipeline=1`` awaits each response before sending the next query
    (strictly serial clients, one response dict per query).
    ``pipeline > 1`` keeps that many point queries in flight per
    client via :meth:`~repro.service.server.SensitivityService.
    submit_nowait` — the multiplexed-client mode the E13 benchmark
    uses. Latency percentiles then live in the *service* metrics
    (per-query submit→dispatch time); the loadgen-side reservoir stays
    empty.
    """
    if pipeline <= 1:
        async def submit(_wid: int, req: Dict) -> Dict:
            return await service.handle_request(req)

        return await _drive(submit, plan, clients)

    from .batching import ServiceOverloaded

    stats = LoadStats()
    counter = {"next": 0}
    total = len(plan)
    ops, edges, weights, who = (plan.ops, plan.edges, plan.weights,
                                plan.instances)

    t0 = time.perf_counter()
    # client-side routing table, resolved vectorised up front (the
    # cluster-client pattern: shard boundaries are static per
    # generation, so per-query routing is one array lookup)
    target = np.empty(total, dtype=object)
    who_arr = np.array(who)
    for name in set(who):
        inst = service.instances[name]
        bounds = np.array([s.edge_lo for s in inst.specs[1:]],
                          dtype=np.int64)
        mask = who_arr == name
        shard_of = np.searchsorted(bounds, edges[mask], side="right")
        batchers = inst.batchers
        target[mask] = [batchers[s] for s in shard_of]

    async def worker() -> None:
        while True:
            i0 = counter["next"]
            if i0 >= total:
                return
            i1 = min(i0 + pipeline, total)
            counter["next"] = i1
            futs = []
            for i in range(i0, i1):
                op = ops[i]
                w = float(weights[i]) if op == "survives" else None
                try:
                    futs.append(target[i].submit(op, edges[i], w))
                except ServiceOverloaded:
                    stats.sent += 1
                    stats.shed += 1
            for fut in futs:
                if not fut.done():
                    await fut
                _gen, ok, _value, error_kind = fut.result()
                stats.sent += 1
                if ok:
                    stats.answered += 1
                elif error_kind == "type":
                    stats.type_errors += 1
                    stats.answered += 1
                else:
                    stats.errors += 1

    await asyncio.gather(*(worker() for _ in range(max(1, clients))))
    stats.wall_s = time.perf_counter() - t0
    return stats


async def _read_frame(reader: asyncio.StreamReader) -> bytes:
    """Read one complete binary frame (header first, then the rest)."""
    head = await reader.readexactly(wire.HEADER_LEN)
    need = wire.frame_length(head)
    return head + await reader.readexactly(need - wire.HEADER_LEN)


async def _hello_binary(reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> Dict[str, int]:
    """Negotiate the binary protocol on a fresh connection.

    The escape frame's leading magic byte is what flips the server's
    per-connection sniffer to binary; the reply carries the symbol
    table (instance name → interned u16 id) used to pack requests.
    """
    writer.write(wire.encode_escape({"op": "hello",
                                     "wire": wire.WIRE_VERSION}))
    await writer.drain()
    resp = wire.decode_escape(await _read_frame(reader))
    if not resp.get("ok"):
        raise ConnectionError(f"binary hello rejected: {resp}")
    return {k: int(v) for k, v in resp["result"]["symbols"].items()}


async def run_tcp(host: str, port: int, plan: QueryPlan, clients: int = 16,
                  connect_timeout_s: float = 15.0,
                  shutdown: bool = False, pipeline: int = 1,
                  wire_mode: str = "json") -> LoadStats:
    """Drive a remote service over ``clients`` real connections.

    ``pipeline > 1`` writes that many requests per connection before
    reading the responses back. The service (and router) answer a
    connection strictly in request order, so the k-th response
    belongs to the k-th request of the chunk — deep pipelining with
    positional correlation, which is also what lets the server's
    micro-batcher see whole chunks instead of one query per RTT.
    Per-query latency is then chunk-granular, so percentiles are
    reported over chunk round-trips divided by chunk size (mean
    in-chunk), not individual RTTs.

    ``wire_mode="binary"`` negotiates the columnar protocol per
    connection, pre-packs the whole plan into one 16-byte-record array
    (timed as ``encode_s``, outside the RTT clock), and tallies the
    fixed-width responses vectorised. In both modes the RTT clock
    starts only after the chunk payload is built, so the reported
    percentiles are server+network time, not driver ``json.dumps``.
    """
    if wire_mode not in ("json", "binary"):
        raise ValueError(f"unknown wire_mode {wire_mode!r}")
    conns = []
    deadline = time.perf_counter() + connect_timeout_s
    for _ in range(max(1, clients)):
        while True:
            try:
                conns.append(await asyncio.open_connection(host, port))
                break
            except OSError:
                if time.perf_counter() >= deadline:
                    raise
                await asyncio.sleep(0.2)

    total = len(plan)
    chunk_n = max(1, pipeline)

    async def drive_jsonl() -> LoadStats:
        stats = LoadStats()
        counter = {"next": 0}

        async def worker(wid: int) -> None:
            reader, writer = conns[wid % len(conns)]
            while True:
                i0 = counter["next"]
                if i0 >= total:
                    return
                i1 = min(i0 + chunk_n, total)
                counter["next"] = i1
                t_enc = time.perf_counter()
                payload = wire.join_lines(
                    plan.request(i) for i in range(i0, i1))
                t0 = time.perf_counter()
                stats.encode_s += t0 - t_enc
                writer.write(payload)
                try:
                    await writer.drain()
                    lines = [await reader.readline()
                             for _ in range(i1 - i0)]
                except (ConnectionError, OSError):
                    lines = [b""] * (i1 - i0)
                per_query = (time.perf_counter() - t0) / (i1 - i0)
                for line in lines:
                    if not line:
                        stats.sent += 1
                        stats.errors += 1
                        continue
                    stats.tally(json.loads(line), per_query)

        t0 = time.perf_counter()
        await asyncio.gather(*(worker(w) for w in range(len(conns))))
        stats.wall_s = time.perf_counter() - t0
        return stats

    async def drive_binary() -> LoadStats:
        stats = LoadStats()
        counter = {"next": 0}
        symbols: Dict[str, int] = {}
        for reader, writer in conns:   # every conn flips to binary
            symbols = await _hello_binary(reader, writer)
        # pack the whole plan once: one 16-byte record per query
        t_enc = time.perf_counter()
        arr = np.zeros(total, dtype=wire.POINT_DTYPE)
        arr["magic"] = wire.MAGIC
        arr["type"] = np.array([wire.OP_CODE[op] for op in plan.ops],
                               dtype=np.uint8)
        arr["iid"] = np.array([symbols[w] for w in plan.instances],
                              dtype=np.uint16)
        arr["edge"] = plan.edges.astype(np.uint32)
        arr["weight"] = plan.weights
        stats.encode_s += time.perf_counter() - t_enc
        shed_codes = (wire.ST_SHED, wire.ST_SHED_ROUTER)

        async def worker(wid: int) -> None:
            reader, writer = conns[wid % len(conns)]
            while True:
                i0 = counter["next"]
                if i0 >= total:
                    return
                i1 = min(i0 + chunk_n, total)
                counter["next"] = i1
                cnt = i1 - i0
                t_e = time.perf_counter()
                payload = arr[i0:i1].tobytes()
                t0 = time.perf_counter()
                stats.encode_s += t0 - t_e
                writer.write(payload)
                try:
                    await writer.drain()
                    data = await reader.readexactly(wire.POINT_LEN * cnt)
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    stats.sent += cnt
                    stats.errors += cnt
                    return        # this conn is dead; others drain the plan
                per_query = (time.perf_counter() - t0) / cnt
                resp = np.frombuffer(data, dtype=wire.RESP_DTYPE)
                statuses = resp["type"] & 0x0F
                n_ok = int(np.count_nonzero(statuses == wire.ST_OK))
                n_type = int(np.count_nonzero(statuses == wire.ST_TYPE))
                n_shed = int(np.count_nonzero(np.isin(statuses,
                                                      shed_codes)))
                stats.sent += cnt
                stats.answered += n_ok + n_type
                stats.type_errors += n_type
                stats.shed += n_shed
                stats.errors += cnt - n_ok - n_type - n_shed
                stats.latencies.extend([per_query] * (n_ok + n_type))

        t0 = time.perf_counter()
        await asyncio.gather(*(worker(w) for w in range(len(conns))))
        stats.wall_s = time.perf_counter() - t0
        return stats

    try:
        if wire_mode == "binary":
            stats = await drive_binary()
        else:
            stats = await drive_jsonl()
        if shutdown:
            reader, writer = conns[0]
            if wire_mode == "binary":
                writer.write(wire.encode_escape({"op": "shutdown"}))
                await writer.drain()
                await _read_frame(reader)
            else:
                writer.write(b'{"op": "shutdown"}\n')
                await writer.drain()
                await reader.readline()
    finally:
        for _, writer in conns:
            writer.close()
    return stats


async def live_update(host: str, port: int, instance: str, m_tree: int,
                      delay_s: float = 0.0, max_probes: int = 24) -> Dict:
    """Force one structure-changing update against a live deployment.

    Probes tree edges (they sort first in every generator layout) with
    a small weight drop — lowering a tree edge always survives — until
    the service reports ``action == "rebuilt"``: on a router that is
    the rebuild-once-on-primary, digest-ship-to-replicas path. Bridge
    edges report ``patched`` (nothing covers them) and are skipped.
    """
    if delay_s > 0:
        await asyncio.sleep(delay_s)
    reader, writer = await asyncio.open_connection(host, port)
    report: Dict = {"ok": False, "action": None, "probes": 0}
    try:
        for edge in range(min(max_probes, m_tree)):
            req = {"op": "update", "instance": instance, "edge": edge,
                   "weight": 1e-6 * (edge + 1)}
            writer.write((json.dumps(req) + "\n").encode())
            await writer.drain()
            line = await reader.readline()
            if not line:
                report["error"] = "connection closed during update"
                return report
            resp = json.loads(line)
            report["probes"] += 1
            if resp.get("action") == "rebuilt":
                report.update(
                    ok=True, action="rebuilt", edge=edge,
                    generation=resp.get("generation"),
                    shipped_to=resp.get("shipped_to"),
                    snapshot_digest=(resp.get("snapshot_digest") or "")[:16],
                )
                return report
        report["error"] = (f"no rebuild-forcing edge in the first "
                           f"{report['probes']} tree edges")
        return report
    finally:
        writer.close()


async def churn_storm(host: str, port: int, instance: str, n: int, m: int,
                      rate: float, batch: int,
                      stop_evt: asyncio.Event) -> Dict:
    """Stream structural batches (``update_batch``) while the storm runs.

    Cycles add → reprice → remove over its own connection at ``rate``
    batches per second until ``stop_evt`` is set. Added edges carry
    weights far above the instance's tree weights, so they join as
    non-tree edges and every batch takes the scoped splice path on the
    primary — each applied batch is still a full generation swap
    (digest-shipped to replicas on a router deployment). Edge ids are
    tracked from the reports' authoritative ``m``, so the generator
    never races its own id predictions. Sheds are tallied and retried;
    anything else non-ok is an error.
    """
    reader, writer = await asyncio.open_connection(host, port)
    stats: Dict = {"batches_sent": 0, "applied": 0, "shed": 0,
                   "rejected": 0, "errors": 0, "scoped": 0,
                   "generations": set(), "last_error": None}
    heavy = 1e9   # above any generator weight: stays non-tree forever
    phase = 0     # 0 = add, 1 = reprice, 2 = remove
    added: List[int] = []
    period = 1.0 / rate if rate > 0 else 0.0
    try:
        while not stop_evt.is_set():
            if phase == 0:
                ops = []
                for j in range(batch):
                    u = j % n
                    v = (j * 7 + 1) % n
                    if v == u:
                        v = (v + 1) % n
                    ops.append({"kind": "add", "u": u, "v": v,
                                "weight": heavy + j})
            elif phase == 1:
                ops = [{"kind": "reprice", "edge": e,
                        "weight": heavy + 100 + k}
                       for k, e in enumerate(added)]
            else:
                ops = [{"kind": "remove", "edge": e} for e in added]
            if not ops:                     # nothing to touch this phase
                phase = (phase + 1) % 3
                continue
            req = {"op": "update_batch", "instance": instance, "ops": ops}
            writer.write((json.dumps(req) + "\n").encode())
            try:
                await writer.drain()
                line = await reader.readline()
            except (ConnectionError, OSError):
                line = b""
            if not line:
                stats["errors"] += 1
                stats["last_error"] = "connection closed mid-churn"
                break
            resp = json.loads(line)
            stats["batches_sent"] += 1
            if resp.get("shed"):
                stats["shed"] += 1          # back off, retry this phase
            elif resp.get("ok"):
                stats["applied"] += 1
                stats["generations"].add(resp.get("generation"))
                if resp.get("scoped"):
                    stats["scoped"] += 1
                if phase == 0:
                    added = list(range(int(resp["m"]) - batch,
                                       int(resp["m"])))
                elif phase == 2:
                    added = []
                phase = (phase + 1) % 3
            elif resp.get("action") == "rejected":
                stats["rejected"] += 1      # structural no: skip the phase
                phase = (phase + 1) % 3
            else:
                stats["errors"] += 1
                stats["last_error"] = resp.get("error")
            try:
                await asyncio.wait_for(stop_evt.wait(), max(period, 1e-3))
            except asyncio.TimeoutError:
                pass
    finally:
        writer.close()
    stats["generations"] = sorted(
        g for g in stats["generations"] if g is not None)
    return stats


async def _oneshot(host: str, port: int, req: Dict,
                   timeout_s: float = 10.0) -> Dict:
    """One request, one response, over a throwaway connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write((json.dumps(req) + "\n").encode())
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout_s)
    finally:
        writer.close()
    if not line:
        return {"ok": False, "error": "connection closed"}
    return json.loads(line)


async def arm_chaos(host: str, port: int, spec: str) -> Dict:
    """Arm a fault-injection plan on a running router (``chaos`` op)."""
    return await _oneshot(host, port, {"op": "chaos", "spec": spec})


async def await_recovery(host: str, port: int, respawns: int,
                         timeout_s: float = 30.0,
                         poll_s: float = 0.25) -> Dict:
    """Poll supervisor metrics until ``respawns`` restarts completed.

    Returns the last supervisor metrics snapshot with ``ok`` set iff
    the fleet recorded at least ``respawns`` finished restarts before
    the deadline. Transient connection failures during the poll are
    retried — the router itself may be busy respawning.
    """
    deadline = time.perf_counter() + timeout_s
    last: Dict = {}
    while True:
        try:
            resp = await _oneshot(host, port, {"op": "metrics"},
                                  timeout_s=min(timeout_s, 10.0))
        except (OSError, asyncio.TimeoutError):
            resp = {}
        if resp.get("ok"):
            last = resp["result"].get("supervisor", {})
            if last.get("restarts", 0) >= respawns:
                return {"ok": True, **last}
        if time.perf_counter() >= deadline:
            return {"ok": False, **last}
        await asyncio.sleep(poll_s)


def _proc_entry(conn, kwargs: Dict) -> None:
    """One forked loadgen process: drive a seeded slice, pipe stats up."""
    async def go() -> None:
        plan = make_plan(kwargs["instances"], kwargs["queries"],
                         seed=kwargs["seed"])
        stats = await run_tcp(
            kwargs["host"], kwargs["port"], plan,
            clients=kwargs["clients"],
            connect_timeout_s=kwargs["connect_timeout_s"],
            pipeline=kwargs["pipeline"],
            wire_mode=kwargs.get("wire_mode", "json"),
        )
        conn.send({
            "sent": stats.sent, "answered": stats.answered,
            "shed": stats.shed, "type_errors": stats.type_errors,
            "errors": stats.errors, "wall_s": stats.wall_s,
            "encode_s": stats.encode_s,
            "latencies": stats.latencies,
        })

    try:
        asyncio.run(go())
    except Exception as exc:  # noqa: BLE001 - the parent tallies it
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


async def run_procs(host: str, port: int, instances: Dict[str, int],
                    queries: int, procs: int, clients: int = 16,
                    seed: int = 0, pipeline: int = 1,
                    connect_timeout_s: float = 15.0,
                    wire_mode: str = "json") -> LoadStats:
    """Fork ``procs`` loadgen processes and merge their LoadStats.

    Each child draws its own plan (``seed + 1000 * proc_id``) over an
    equal share of ``queries`` and drives it over its own connections;
    summaries come back over a pipe. A child that dies (or reports a
    transport failure) is folded in as errors, not dropped — the merged
    exit criteria still see it.
    """
    from ..mpc.parallel import get_context

    ctx = get_context()
    share = max(1, queries // max(1, procs))
    kids = []
    for pid in range(max(1, procs)):
        parent_conn, child_conn = ctx.Pipe()
        kw = {"host": host, "port": port, "instances": instances,
              "queries": share, "clients": clients,
              "seed": seed + 1000 * pid, "pipeline": pipeline,
              "connect_timeout_s": connect_timeout_s,
              "wire_mode": wire_mode}
        p = ctx.Process(target=_proc_entry, args=(child_conn, kw),
                        daemon=True)
        p.start()
        child_conn.close()
        kids.append((p, parent_conn))
    loop = asyncio.get_running_loop()
    parts = []
    for p, conn in kids:
        try:
            msg = await loop.run_in_executor(None, conn.recv)
        except EOFError:
            msg = {"error": "loadgen child died without reporting"}
        finally:
            conn.close()
        part = LoadStats()
        if "error" in msg:
            part.sent = share
            part.errors = share  # the whole share counts as failed
        else:
            part.sent = msg["sent"]
            part.answered = msg["answered"]
            part.shed = msg["shed"]
            part.type_errors = msg["type_errors"]
            part.errors = msg["errors"]
            part.wall_s = msg["wall_s"]
            part.encode_s = msg.get("encode_s", 0.0)
            part.latencies = msg["latencies"]
        parts.append(part)
    for p, _ in kids:
        await loop.run_in_executor(None, p.join, 10.0)
        if p.is_alive():  # pragma: no cover - wedged child
            p.terminate()
    return LoadStats.merge(parts)


async def _main_async(args) -> int:
    reader, writer = None, None
    deadline = time.perf_counter() + args.connect_timeout
    while True:  # discover instances (retrying while the server boots)
        try:
            reader, writer = await asyncio.open_connection(args.host,
                                                           args.port)
            break
        except OSError:
            if time.perf_counter() >= deadline:
                print(f"could not connect to {args.host}:{args.port}",
                      file=sys.stderr)
                return 1
            await asyncio.sleep(0.2)
    writer.write(b'{"op": "instances"}\n')
    # a server that accepts but never answers (wedged event loop, wrong
    # protocol on the port) must not hang the client forever: bound the
    # handshake read by the same budget as the connection itself. A
    # reset mid-handshake (server slammed the door) is the same story.
    try:
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(),
                                      args.connect_timeout)
    except asyncio.TimeoutError:
        print(f"server at {args.host}:{args.port} accepted the connection "
              f"but did not answer the instances handshake within "
              f"{args.connect_timeout:.0f}s", file=sys.stderr)
        writer.close()
        return 1
    except OSError:
        line = b""  # dropped mid-handshake: same as closing cleanly
    writer.close()
    if not line:
        print(f"server at {args.host}:{args.port} closed the connection "
              f"during the instances handshake", file=sys.stderr)
        return 1
    desc = json.loads(line)
    if not desc.get("ok"):
        print(f"instances query failed: {desc}", file=sys.stderr)
        return 1
    described = desc["result"]
    instances = {name: info["m"] for name, info in described.items()}
    print(f"instances: "
          f"{', '.join(f'{k} (m={v})' for k, v in sorted(instances.items()))}")

    if args.chaos:
        armed = await arm_chaos(args.host, args.port, args.chaos)
        if not armed.get("ok"):
            print(f"chaos arm FAILED: {armed.get('error')}",
                  file=sys.stderr)
            return 1
        print(f"chaos armed: {armed['result']['events']} event(s) "
              f"({args.chaos})")

    update_task = None
    if args.live_update:
        name = sorted(described)[0]
        m_tree = described[name].get("m_tree", instances[name] // 3)
        update_task = asyncio.create_task(live_update(
            args.host, args.port, name, m_tree,
            delay_s=args.update_delay))

    churn_task, churn_stop = None, None
    if args.churn > 0:
        name = sorted(described)[0]
        churn_stop = asyncio.Event()
        churn_task = asyncio.create_task(churn_storm(
            args.host, args.port, name, described[name]["n"],
            instances[name], args.churn, args.churn_batch, churn_stop))

    if args.procs > 1:
        stats = await run_procs(
            args.host, args.port, instances, args.queries,
            procs=args.procs, clients=args.clients, seed=args.seed,
            pipeline=args.pipeline,
            connect_timeout_s=args.connect_timeout,
            wire_mode=args.wire)
    else:
        plan = make_plan(instances, args.queries, seed=args.seed)
        stats = await run_tcp(args.host, args.port, plan,
                              clients=args.clients,
                              connect_timeout_s=args.connect_timeout,
                              pipeline=args.pipeline,
                              wire_mode=args.wire)
    churn_ok = True
    if churn_task is not None:
        churn_stop.set()
        churn = await churn_task
        gens = churn["generations"]
        churn_ok = (churn["errors"] == 0 and churn["applied"] >= 2
                    and len(gens) >= 2)
        line = (f"churn: {churn['applied']} of {churn['batches_sent']} "
                f"batches applied ({churn['scoped']} scoped), "
                f"{churn['shed']} shed, {churn['rejected']} rejected, "
                f"{len(gens)} generation swaps"
                + (f" (gen {gens[0]}..{gens[-1]})" if gens else ""))
        if churn_ok:
            print(line)
        else:
            print(f"churn FAILED: {line}; errors {churn['errors']} "
                  f"({churn['last_error']})", file=sys.stderr)
    update_ok = True
    if update_task is not None:
        upd = await update_task
        update_ok = upd.get("ok", False)
        if update_ok:
            print(f"live update: rebuilt edge {upd['edge']} -> "
                  f"generation {upd['generation']} after {upd['probes']} "
                  f"probe(s), shipped to {upd.get('shipped_to')}")
        else:
            print(f"live update FAILED: {upd.get('error')}",
                  file=sys.stderr)
    recovery_ok = True
    if args.expect_respawns > 0:
        rec = await await_recovery(args.host, args.port,
                                   args.expect_respawns,
                                   timeout_s=args.recovery_timeout)
        recovery_ok = rec.pop("ok", False)
        if recovery_ok:
            print(f"recovery: {rec.get('restarts')} respawn(s), "
                  f"{rec.get('failovers')} failover(s), "
                  f"{rec.get('read_retries')} read retries, "
                  f"p99 {rec.get('recovery_p99_s')}s, "
                  f"degraded {rec.get('degraded_s')}s")
        else:
            print(f"recovery FAILED: wanted {args.expect_respawns} "
                  f"respawn(s) within {args.recovery_timeout:.0f}s, "
                  f"last supervisor snapshot {rec}", file=sys.stderr)
    if args.shutdown:
        try:
            r, w = await asyncio.open_connection(args.host, args.port)
            w.write(b'{"op": "shutdown"}\n')
            await w.drain()
            await r.readline()
            w.close()
        except OSError:
            pass
    s = stats.summary()
    mode = (f"{args.procs} procs x {args.clients} clients"
            if args.procs > 1 else f"{args.clients} clients")
    print(f"served {s['answered']:,} of {s['sent']:,} queries in "
          f"{s['wall_s']:.2f}s ({s['qps']:,.0f} qps, {mode}, "
          f"pipeline {args.pipeline}, wire {args.wire}), "
          f"shed {s['shed']}, transport errors {s['errors']}, "
          f"p50 {s['p50_ms']}ms p99 {s['p99_ms']}ms, "
          f"driver encode {s['encode_s']:.2f}s")
    ok = (s["answered"] > 0 and s["qps"] > 0 and s["errors"] == 0
          and update_ok and churn_ok and recovery_ok)
    return 0 if ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        description="load-generate against a running repro serve process"
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=7464)
    ap.add_argument("--queries", type=int, default=5000)
    ap.add_argument("--clients", type=int, default=16)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--connect-timeout", type=float, default=15.0,
                    help="seconds to retry the first connection")
    ap.add_argument("--procs", type=int, default=1,
                    help="fork this many whole loadgen processes and "
                         "merge their stats (each drives queries/procs)")
    ap.add_argument("--pipeline", type=int, default=1,
                    help="requests kept in flight per connection "
                         "(responses correlate positionally)")
    ap.add_argument("--wire", choices=("json", "binary"), default="json",
                    help="query-storm protocol: JSON lines or the "
                         "binary columnar protocol (control side "
                         "channels stay JSON either way)")
    ap.add_argument("--churn", type=float, default=0.0, metavar="RATE",
                    help="stream structural update_batch ops at RATE "
                         "batches/s while the storm runs (add/reprice/"
                         "remove cycles of heavy non-tree edges)")
    ap.add_argument("--churn-batch", type=int, default=8,
                    help="structural ops per churn batch")
    ap.add_argument("--live-update", action="store_true",
                    help="force one rebuild-forcing update mid-storm "
                         "(on a router: a digest-shipped generation swap)")
    ap.add_argument("--update-delay", type=float, default=0.5,
                    help="seconds into the storm to fire --live-update")
    ap.add_argument("--chaos", type=str, default=None, metavar="SPEC",
                    help="arm this fault-injection plan on the router "
                         "before the storm (e.g. 'kill:1@0.5'; grammar "
                         "in repro.service.chaos)")
    ap.add_argument("--expect-respawns", type=int, default=0, metavar="N",
                    help="after the storm, require >= N completed worker "
                         "respawns (polls supervisor metrics)")
    ap.add_argument("--recovery-timeout", type=float, default=30.0,
                    help="seconds to wait for --expect-respawns to land")
    ap.add_argument("--shutdown", action="store_true",
                    help="send a shutdown op after the run")
    args = ap.parse_args(argv)
    return asyncio.run(_main_async(args))


if __name__ == "__main__":
    raise SystemExit(main())
