"""Per-shard and service-level serving metrics.

Lightweight counters plus a fixed-size latency reservoir (the last
``capacity`` observations, vectorised percentile on snapshot). Shards
own a :class:`ShardMetrics`; the service folds them into one snapshot
dict next to the write-path counters — the numbers the E13 benchmark
and the ``metrics`` wire op report: qps, batch occupancy, p50/p99
latency, shed count, generation swaps, update classifications.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

__all__ = ["LatencyReservoir", "ShardMetrics", "UpdateMetrics"]


class LatencyReservoir:
    """Ring buffer of the most recent latencies (seconds)."""

    def __init__(self, capacity: int = 4096):
        self._buf = np.zeros(capacity, dtype=np.float64)
        self._pos = 0
        self._count = 0

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        cap = len(self._buf)
        if len(values) >= cap:  # keep only the newest window
            self._buf[:] = values[-cap:]
            self._pos = 0
            self._count = cap
            return
        end = self._pos + len(values)
        if end <= cap:
            self._buf[self._pos:end] = values
        else:
            cut = cap - self._pos
            self._buf[self._pos:] = values[:cut]
            self._buf[: end - cap] = values[cut:]
        self._pos = end % cap
        self._count = min(cap, self._count + len(values))

    def percentile(self, q: float) -> Optional[float]:
        if self._count == 0:
            return None
        return float(np.percentile(self._buf[: self._count], q))


class ShardMetrics:
    """Counters one shard worker updates on every dispatched batch."""

    def __init__(self, reservoir: int = 4096):
        self.queries = 0
        self.batches = 0
        self.shed = 0
        self.type_errors = 0  # wrong-edge-kind queries answered with an error
        self.swaps = 0
        self.patched = 0      # oracle-preserving in-place re-pricings
        self.latency = LatencyReservoir(reservoir)

    def record_batch(self, size: int, latencies: np.ndarray) -> None:
        self.queries += size
        self.batches += 1
        self.latency.extend(latencies)

    def snapshot(self, uptime_s: Optional[float] = None) -> Dict:
        occupancy = self.queries / self.batches if self.batches else 0.0
        out = {
            "queries": self.queries,
            "batches": self.batches,
            "batch_occupancy": round(occupancy, 2),
            "shed": self.shed,
            "type_errors": self.type_errors,
            "generation_swaps": self.swaps,
            "patched": self.patched,
            "p50_ms": _ms(self.latency.percentile(50)),
            "p99_ms": _ms(self.latency.percentile(99)),
        }
        if uptime_s:
            out["qps"] = round(self.queries / uptime_s, 1)
        return out


class UpdateMetrics:
    """Write-path counters (per instance)."""

    def __init__(self):
        self.applied_preserving = 0
        self.applied_rebuild = 0
        self.rejected = 0
        self.stages_executed = 0
        self.stages_cached = 0
        self.rebuild_wall_s = 0.0

    def snapshot(self) -> Dict:
        return {
            "preserving": self.applied_preserving,
            "rebuilds": self.applied_rebuild,
            "rejected": self.rejected,
            "stages_executed": self.stages_executed,
            "stages_cached": self.stages_cached,
            "rebuild_wall_s": round(self.rebuild_wall_s, 4),
        }


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1e3, 3)


def now() -> float:
    return time.perf_counter()
