"""Per-shard and service-level serving metrics.

Lightweight counters plus a fixed-size latency reservoir (the last
``capacity`` observations, vectorised percentile on snapshot). Shards
own a :class:`ShardMetrics`; the service folds them into one snapshot
dict next to the write-path counters — the numbers the E13 benchmark
and the ``metrics`` wire op report: qps, batch occupancy, p50/p99
latency, shed count, generation swaps, update classifications.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

__all__ = ["LatencyReservoir", "ShardMetrics", "UpdateMetrics",
           "StreamMetrics", "RouterMetrics", "SupervisorMetrics",
           "merged_latency"]


class LatencyReservoir:
    """Ring buffer of the most recent latencies (seconds)."""

    def __init__(self, capacity: int = 4096):
        self._buf = np.zeros(capacity, dtype=np.float64)
        self._pos = 0
        self._count = 0

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        cap = len(self._buf)
        if len(values) >= cap:  # keep only the newest window
            self._buf[:] = values[-cap:]
            self._pos = 0
            self._count = cap
            return
        end = self._pos + len(values)
        if end <= cap:
            self._buf[self._pos:end] = values
        else:
            cut = cap - self._pos
            self._buf[self._pos:] = values[:cut]
            self._buf[: end - cap] = values[cut:]
        self._pos = end % cap
        self._count = min(cap, self._count + len(values))

    def percentile(self, q: float) -> Optional[float]:
        if self._count == 0:
            return None
        return float(np.percentile(self._buf[: self._count], q))

    def values(self) -> np.ndarray:
        """The buffered window (unordered copy) — merge fodder."""
        return self._buf[: self._count].copy()


def merged_latency(reservoirs) -> Dict:
    """One service-wide ``{p50_ms, p99_ms, samples}`` over many shards.

    Percentiles do not compose — the p99 of per-shard p99s is not the
    service p99 — so the merge pools the raw reservoir windows and
    takes percentiles over the union. Each reservoir holds its most
    recent window, so the merge is the recent service-wide
    distribution, weighted by per-shard traffic exactly as observed.
    """
    pools = [r.values() for r in reservoirs]
    pools = [p for p in pools if len(p)]
    if not pools:
        return {"p50_ms": None, "p99_ms": None, "samples": 0}
    allv = np.concatenate(pools)
    return {
        "p50_ms": _ms(float(np.percentile(allv, 50))),
        "p99_ms": _ms(float(np.percentile(allv, 99))),
        "samples": int(len(allv)),
    }


class ShardMetrics:
    """Counters one shard worker updates on every dispatched batch."""

    def __init__(self, reservoir: int = 4096):
        self.queries = 0
        self.batches = 0
        self.shed = 0
        self.type_errors = 0  # wrong-edge-kind queries answered with an error
        self.swaps = 0
        self.patched = 0      # oracle-preserving in-place re-pricings
        self.latency = LatencyReservoir(reservoir)

    def record_batch(self, size: int, latencies: np.ndarray) -> None:
        self.queries += size
        self.batches += 1
        self.latency.extend(latencies)

    def snapshot(self, uptime_s: Optional[float] = None) -> Dict:
        occupancy = self.queries / self.batches if self.batches else 0.0
        out = {
            "queries": self.queries,
            "batches": self.batches,
            "batch_occupancy": round(occupancy, 2),
            "shed": self.shed,
            "type_errors": self.type_errors,
            "generation_swaps": self.swaps,
            "patched": self.patched,
            "p50_ms": _ms(self.latency.percentile(50)),
            "p99_ms": _ms(self.latency.percentile(99)),
        }
        if uptime_s:
            out["qps"] = round(self.queries / uptime_s, 1)
        return out


class UpdateMetrics:
    """Write-path counters (per instance)."""

    def __init__(self):
        self.applied_preserving = 0
        self.applied_rebuild = 0
        self.rejected = 0
        self.stages_executed = 0
        self.stages_cached = 0
        self.rebuild_wall_s = 0.0

    def snapshot(self) -> Dict:
        return {
            "preserving": self.applied_preserving,
            "rebuilds": self.applied_rebuild,
            "rejected": self.rejected,
            "stages_executed": self.stages_executed,
            "stages_cached": self.stages_cached,
            "rebuild_wall_s": round(self.rebuild_wall_s, 4),
        }


class StreamMetrics:
    """Streaming write-path counters (per instance).

    One :class:`~repro.service.streaming.StreamIngestor` updates these
    per *applied* batch: how many wire requests were absorbed into it
    (``requests_merged``), how many structural ops arrived vs survived
    coalescing, whether the rebuild took the scoped splice path or a
    full replay, and the end-to-end apply latency (enqueue → generation
    installed). ``coalesce_ratio`` is ops-in over ops-applied — 1.0
    means nothing merged, 2.0 means half the wire ops were absorbed by
    last-op-wins coalescing before touching the pipeline.
    """

    def __init__(self, reservoir: int = 1024):
        self.batches_applied = 0
        self.requests_received = 0
        self.requests_merged = 0     # absorbed into an earlier apply
        self.ops_received = 0
        self.ops_applied = 0         # post-coalesce, post-rejection
        self.shed = 0
        self.rejected_batches = 0
        self.scoped_replays = 0      # splice path: delta rows only
        self.full_replays = 0        # tree-affecting: honest re-run
        self.stages_spliced = 0
        self.latency = LatencyReservoir(reservoir)

    def record(self, report, requests: int, latency_s: float) -> None:
        """Fold one drained batch in (``report`` is a BatchReport)."""
        self.requests_received += requests
        self.requests_merged += requests - 1
        self.ops_received += report.n_ops
        if report.action == "rejected":
            self.rejected_batches += 1
            return
        self.batches_applied += 1
        self.ops_applied += report.n_applied
        self.stages_spliced += report.stages_spliced
        if report.scoped:
            self.scoped_replays += 1
        else:
            self.full_replays += 1
        self.latency.extend([latency_s])

    def snapshot(self) -> Dict:
        mean_batch = (self.ops_applied / self.batches_applied
                      if self.batches_applied else 0.0)
        ratio = (self.ops_received / self.ops_applied
                 if self.ops_applied else None)
        return {
            "batches_applied": self.batches_applied,
            "requests_received": self.requests_received,
            "requests_merged": self.requests_merged,
            "ops_received": self.ops_received,
            "ops_applied": self.ops_applied,
            "mean_batch_size": round(mean_batch, 2),
            "coalesce_ratio": round(ratio, 3) if ratio is not None else None,
            "shed": self.shed,
            "rejected_batches": self.rejected_batches,
            "scoped_replays": self.scoped_replays,
            "full_replays": self.full_replays,
            "stages_spliced": self.stages_spliced,
            "apply_p50_ms": _ms(self.latency.percentile(50)),
            "apply_p99_ms": _ms(self.latency.percentile(99)),
        }


class RouterMetrics:
    """Router-tier counters: what the front door did with each request.

    ``forwarded`` counts queries relayed to a worker; ``replica_hits``
    the subset served by a non-primary replica (read fan-out working);
    ``shed_router`` requests refused *at the router* because the target
    worker's reported queue depth crossed the shed watermark — the
    backpressure propagation path; ``swaps_shipped`` generation swaps
    relayed to replicas by snapshot digest, with their ship+adopt
    latency in ``swap_latency``.
    """

    def __init__(self, reservoir: int = 8192):
        self.forwarded = 0
        self.replica_hits = 0
        self.shed_router = 0
        self.updates = 0
        self.swaps_shipped = 0
        self.patches_fanned = 0
        self.depth_polls = 0
        self.worker_errors = 0
        self.latency = LatencyReservoir(reservoir)
        self.swap_latency = LatencyReservoir(256)

    def snapshot(self) -> Dict:
        return {
            "forwarded": self.forwarded,
            "replica_hits": self.replica_hits,
            "shed_router": self.shed_router,
            "updates": self.updates,
            "swaps_shipped": self.swaps_shipped,
            "patches_fanned": self.patches_fanned,
            "depth_polls": self.depth_polls,
            "worker_errors": self.worker_errors,
            "forward_p50_ms": _ms(self.latency.percentile(50)),
            "forward_p99_ms": _ms(self.latency.percentile(99)),
            "swap_p50_ms": _ms(self.swap_latency.percentile(50)),
            "swap_p99_ms": _ms(self.swap_latency.percentile(99)),
        }


class SupervisorMetrics:
    """Self-healing counters: what the supervisor did to keep the
    fleet serving.

    ``deaths_detected`` counts suspicion events (sentinel death, failed
    heartbeat, or a data-path disconnect reported by the router);
    ``restarts`` full process respawns and ``links_healed`` severed
    connections re-dialled without a respawn; ``failovers`` writes
    retried onto a promoted replica after the acting primary dropped
    mid-request; ``read_retries`` pure reads transparently re-sent to
    another live replica; ``resyncs`` stale replicas re-aligned from
    the generation ledger (snapshot re-adopt + patch-log replay).
    ``recovery`` holds per-incident time-to-recovery (suspicion →
    back in the read rotation), and ``degraded_s`` their sum — the
    total wall time any worker spent out of rotation.
    """

    def __init__(self, reservoir: int = 256):
        self.deaths_detected = 0
        self.restarts = 0
        self.evictions = 0
        self.failovers = 0
        self.read_retries = 0
        self.resyncs = 0
        self.links_healed = 0
        self.degraded_s = 0.0
        self.recovery = LatencyReservoir(reservoir)

    def snapshot(self) -> Dict:
        return {
            "deaths_detected": self.deaths_detected,
            "restarts": self.restarts,
            "evictions": self.evictions,
            "failovers": self.failovers,
            "read_retries": self.read_retries,
            "resyncs": self.resyncs,
            "links_healed": self.links_healed,
            "degraded_s": round(self.degraded_s, 3),
            "recovery_p50_s": _s(self.recovery.percentile(50)),
            "recovery_p99_s": _s(self.recovery.percentile(99)),
        }


def _s(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds, 3)


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1e3, 3)


def now() -> float:
    return time.perf_counter()
