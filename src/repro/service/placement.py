"""Consistent-hash placement of graph instances onto worker processes.

The router tier places every named instance with **rendezvous (highest
random weight) hashing**: each (instance, worker) pair gets a stable
64-bit score (BLAKE2b of ``"worker@instance"``) and the instance is
owned by the worker with the highest score. Replica sets are the top-k
scorers. This is the consistent-hashing variant with the strongest
movement guarantees, and the two properties the tier is built on — the
ones the test suite pins down — hold by construction:

* **balance** — placements are an independent uniform draw per
  instance, so every worker owns within a small factor of
  ``instances / workers`` (the suite asserts within 2x of ideal at
  100 instances x 8 workers);
* **minimal movement** — a joining worker steals exactly the instances
  it now top-scores (an expected ``1/(workers+1)`` fraction) and a
  leaving worker's instances are exactly the set that remaps; no
  unrelated instance ever moves, so placements keep their warm page
  cache and artifact stores across fleet changes.

Scores rank every worker for every instance, so the replica *order* is
stable too: a fleet change only inserts or deletes one worker from
each ranking.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List

from ..errors import ValidationError

__all__ = ["Placement"]


def _score(key: str, worker: int) -> int:
    """Stable 64-bit rendezvous score of ``(key, worker)``."""
    return int.from_bytes(
        hashlib.blake2b(f"{worker}@{key}".encode(), digest_size=8).digest(),
        "big",
    )


class Placement:
    """Rendezvous-hash placement of string keys onto worker ids."""

    def __init__(self, workers=()):
        self._workers: set = set()
        for w in workers:
            self.add_worker(w)

    @property
    def workers(self) -> List[int]:
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: object) -> bool:
        return worker in self._workers

    def add_worker(self, worker: int) -> None:
        worker = int(worker)
        if worker in self._workers:
            raise ValidationError(f"worker {worker} already placed")
        self._workers.add(worker)

    def remove_worker(self, worker: int) -> None:
        worker = int(worker)
        if worker not in self._workers:
            raise ValidationError(f"worker {worker} not placed")
        self._workers.discard(worker)

    def place(self, key: str) -> int:
        """The worker owning ``key`` (its highest scorer, the primary)."""
        if not self._workers:
            raise ValidationError("placement has no workers")
        return max(self._workers, key=lambda w: _score(key, w))

    def replicas(self, key: str, count: int) -> List[int]:
        """The top-``count`` workers for ``key``, primary first.

        ``count`` saturates at the fleet size.
        """
        if not self._workers:
            raise ValidationError("placement has no workers")
        count = max(1, min(int(count), len(self._workers)))
        ranked = sorted(self._workers, key=lambda w: _score(key, w),
                        reverse=True)
        return ranked[:count]

    def placement(self, keys, count: int = 1) -> Dict[str, List[int]]:
        """Replica sets for every key in one call (router bootstrap)."""
        return {k: self.replicas(k, count) for k in keys}
