"""Streaming structural ingest: batched graph mutations under load.

The point-update write path (:meth:`InstanceUpdater.apply`) re-prices
one existing edge. This module is the *structural* write path: clients
stream ``add_edge`` / ``remove_edge`` / ``reprice`` ops over the same
TCP protocol (wire op ``update_batch``) and a per-instance
:class:`StreamIngestor` turns the stream into generations:

* **bounded queue** — each wire request enqueues its op list with a
  future; a queue past ``depth`` pending requests answers
  ``{"ok": false, "shed": true}`` immediately (the same shed contract
  as the read path: overload is a cheap structured answer, not an
  ever-growing backlog).
* **cross-request coalescing** — the drain loop empties whatever is
  queued *behind* the batch it is about to apply and folds those
  requests' ops in, so a burst of small wire batches becomes one
  rebuild. Op-level coalescing (last-op-wins per edge, removes
  terminal) happens in :func:`~repro.graph.mutations.coalesce_ops`
  inside the apply; every absorbed request resolves with the shared
  :class:`~repro.service.updates.BatchReport`.
* **classified rebuild** — the apply runs on a worker thread under the
  instance's update lock. :func:`~repro.graph.mutations.apply_ops`
  repairs the MST exactly and reports whether the batch touched the
  candidate tree; non-tree-only batches take the scoped splice path
  (only delta rows of the per-edge stages recompute — see
  ``InstanceUpdater._prime_scoped``), tree-affecting batches replay
  honestly through the narrowed fingerprint scopes.
* **one generation swap per batch** — after the apply the service
  re-plans its edge-range shards for the new ``m`` and swaps the
  shard/batcher tuples in one synchronous block, so concurrent
  ``submit_nowait`` callers see either the old generation or the new
  one, never a mix. Queries queued against the old generation drain on
  the oracle they were routed to.

:class:`~repro.service.metrics.StreamMetrics` tracks batch sizes,
coalesce ratios, scoped-vs-full replay counts and p50/p99 apply
latency; it is folded into the ``metrics`` wire op per instance.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Sequence

from ..errors import ServiceError
from .metrics import StreamMetrics

__all__ = ["StreamIngestor"]


class StreamIngestor:
    """Per-instance bounded ingest queue + coalescing drain loop."""

    def __init__(self, service, instance: str, depth: int = 64):
        self.service = service
        self.instance = instance
        self.depth = max(1, int(depth))
        self.metrics = StreamMetrics()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._closing = False

    # -- client side -----------------------------------------------------------

    async def submit(self, ops: Sequence[Dict]) -> Dict:
        """Enqueue one wire request's ops; resolves with its BatchReport.

        Sheds (``{"ok": false, "shed": true}``) when ``depth`` requests
        are already pending — the caller backs off, the queue stays
        bounded, and reads keep their latency budget.
        """
        if self._closing:
            return {"ok": False, "error": "ingestor is stopped"}
        if not isinstance(ops, (list, tuple)) or not ops:
            return {"ok": False, "error": "update_batch needs a non-empty "
                                          "list of ops"}
        if self._queue.qsize() >= self.depth:
            self.metrics.shed += 1
            return {"ok": False, "shed": True,
                    "error": f"ingest queue for {self.instance!r} is full "
                             f"({self.depth} pending batches)"}
        fut = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((list(ops), fut, time.perf_counter()))
        self.start()
        return await fut

    # -- worker side -----------------------------------------------------------

    def start(self) -> None:
        if self._task is None and not self._closing:
            self._task = asyncio.get_running_loop().create_task(self._drain())

    async def stop(self) -> None:
        """Drain pending batches, then stop the loop."""
        self._closing = True
        if self._task is not None:
            self._queue.put_nowait(None)
            await self._task
            self._task = None
        while not self._queue.empty():  # racers that lost to _closing
            item = self._queue.get_nowait()
            if item is not None and not item[1].done():
                item[1].set_result(
                    {"ok": False, "error": "service shut down"})

    async def _drain(self) -> None:
        while True:
            item = await self._queue.get()
            if item is None:
                return
            group = [item]
            # coalesce across requests: whatever queued up while the
            # previous batch was rebuilding rides this one
            while not self._queue.empty():
                nxt = self._queue.get_nowait()
                if nxt is None:
                    await self._apply(group)
                    return
                group.append(nxt)
            await self._apply(group)

    async def _apply(self, group: List) -> None:
        ops = [op for req_ops, _fut, _t0 in group for op in req_ops]
        t0 = min(t for _ops, _fut, t in group)
        try:
            resp = await self.service._apply_structural(self.instance, ops)
        except ServiceError as exc:
            resp = {"ok": False, "error": str(exc), "error_kind": exc.kind}
        except Exception as exc:  # noqa: BLE001 - answer, don't kill the loop
            resp = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if resp.get("report") is not None:
            self.metrics.record(resp.pop("report"), requests=len(group),
                                latency_s=time.perf_counter() - t0)
        resp["coalesced_requests"] = len(group)
        for _ops, fut, _t in group:
            if not fut.done():
                fut.set_result(resp)
