"""``repro.service`` — the sharded, micro-batching query service (S19).

The serving layer the oracle was built for: a long-lived asyncio
process that answers ``sensitivity`` / ``survives`` /
``replacement_edge`` / ``entry_threshold`` point queries over one or
many graph instances, micro-batched into the oracle's vectorised bulk
kernels, sharded by edge range, and *updateable* — committed weight
re-pricings are triaged against the oracle's own thresholds into
in-place patches or incremental pipeline rebuilds with an atomic
generation swap. See DESIGN.md §"S19 service layer".

The router tier (S22) scales this horizontally: :class:`RouterTier`
owns the public TCP listener, places instances onto N worker
processes by rendezvous hashing (:class:`Placement`), fans reads out
over replicas, propagates backpressure, and ships rebuilt generations
to replicas as digest-addressed snapshot files instead of repeating
the rebuild. See DESIGN.md §6.2.

The streaming tier (S23) makes the graphs *dynamic*: clients stream
batched structural ops (``add_edge`` / ``remove_edge`` / re-pricings,
wire op ``update_batch``) through a per-instance
:class:`StreamIngestor` that bounds, coalesces and classifies each
batch; non-tree-only batches replay only the per-edge stages' delta
rows against subgraph-scoped fingerprints, and each applied batch is
one atomic generation swap (re-sharded for the new edge count, shipped
to replicas unchanged). See DESIGN.md §6.3.

The supervision layer (S24) makes the router tier *self-healing*:
a :class:`Supervisor` detects worker death (process sentinels +
heartbeats), re-dials severed links, respawns crashes under a bounded
:class:`RestartPolicy`, and gates every rejoin behind catch-up from a
:class:`GenerationLedger` (latest snapshot + patch-log replay), while
reads retry on live replicas and writes fail over to a promoted
replica. :mod:`repro.service.chaos` injects deterministic, seeded
faults (``--chaos`` / the ``chaos`` wire op) so recovery is CI-tested.
See DESIGN.md §6.4.

The wire layer (S25) removes the data plane's serialisation tax: a
versioned binary columnar protocol (:mod:`repro.service.wire`) rides
the *same* TCP ports — the first byte of a connection disambiguates —
with fixed 16-byte point frames, columnar bulk frames, a per-
connection ``hello`` symbol handshake (:class:`WireSymbols`) and a
JSON *escape frame* for control ops. The router relays binary frames
with zero JSON parser invocations (header peek + byte counting), and
:class:`WireMetrics` counters prove it. See DESIGN.md §6.5.

Entry points: ``python -m repro serve`` / ``python -m repro route``
(TCP JSON-lines + binary wire), :class:`ServiceClient` (in-process or
TCP, ``wire_mode="binary"``), :mod:`repro.service.loadgen`
(``--wire binary``).
"""

from .batching import QUERY_OPS, MicroBatcher, ServiceOverloaded
from .chaos import ChaosEvent, ChaosInjector, ChaosPlan
from .metrics import (LatencyReservoir, RouterMetrics, ShardMetrics,
                      StreamMetrics, SupervisorMetrics, UpdateMetrics,
                      merged_latency)
from .placement import Placement
from .router import BinaryWorkerLink, RouterConfig, RouterTier, WorkerLink
from .server import SensitivityService, ServiceClient, ServiceConfig
from .wire import WIRE_VERSION, WireError, WireMetrics, WireSymbols
from .shards import OracleShard, ShardSpec, plan_shards, route
from .streaming import StreamIngestor
from .supervision import (GenerationLedger, LedgerEntry, RestartPolicy,
                          Supervisor)
from .updates import BatchReport, InstanceUpdater, UpdateReport
from .worker_proc import WorkerSpec, WorkerService, worker_entry

__all__ = [
    "QUERY_OPS",
    "MicroBatcher",
    "ServiceOverloaded",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosPlan",
    "LatencyReservoir",
    "RouterMetrics",
    "ShardMetrics",
    "StreamMetrics",
    "SupervisorMetrics",
    "UpdateMetrics",
    "merged_latency",
    "Placement",
    "GenerationLedger",
    "LedgerEntry",
    "RestartPolicy",
    "Supervisor",
    "BinaryWorkerLink",
    "RouterConfig",
    "RouterTier",
    "WorkerLink",
    "WIRE_VERSION",
    "WireError",
    "WireMetrics",
    "WireSymbols",
    "SensitivityService",
    "ServiceClient",
    "ServiceConfig",
    "OracleShard",
    "ShardSpec",
    "plan_shards",
    "route",
    "StreamIngestor",
    "InstanceUpdater",
    "BatchReport",
    "UpdateReport",
    "WorkerSpec",
    "WorkerService",
    "worker_entry",
]
