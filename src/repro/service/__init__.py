"""``repro.service`` — the sharded, micro-batching query service (S19).

The serving layer the oracle was built for: a long-lived asyncio
process that answers ``sensitivity`` / ``survives`` /
``replacement_edge`` / ``entry_threshold`` point queries over one or
many graph instances, micro-batched into the oracle's vectorised bulk
kernels, sharded by edge range, and *updateable* — committed weight
re-pricings are triaged against the oracle's own thresholds into
in-place patches or incremental pipeline rebuilds with an atomic
generation swap. See DESIGN.md §"S19 service layer".

Entry points: ``python -m repro serve`` (TCP JSON-lines),
:class:`ServiceClient` (in-process), :mod:`repro.service.loadgen`.
"""

from .batching import QUERY_OPS, MicroBatcher, ServiceOverloaded
from .metrics import LatencyReservoir, ShardMetrics, UpdateMetrics
from .server import SensitivityService, ServiceClient, ServiceConfig
from .shards import OracleShard, ShardSpec, plan_shards, route
from .updates import InstanceUpdater, UpdateReport

__all__ = [
    "QUERY_OPS",
    "MicroBatcher",
    "ServiceOverloaded",
    "LatencyReservoir",
    "ShardMetrics",
    "UpdateMetrics",
    "SensitivityService",
    "ServiceClient",
    "ServiceConfig",
    "OracleShard",
    "ShardSpec",
    "plan_shards",
    "route",
    "InstanceUpdater",
    "UpdateReport",
]
