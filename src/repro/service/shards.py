"""Edge-range sharding of one instance's oracle across worker slots.

A serving instance splits its edge index space ``[0, m)`` into
contiguous near-equal ranges, one :class:`OracleShard` per range.
Queries route by plain integer arithmetic on the edge index; each shard
runs its own micro-batcher, so hot ranges fill their own batches and
per-shard metrics localise load.

Every shard holds a reference to a full oracle (all queries are O(1)
array lookups — the range only scopes *routing*, not storage). With
``mmap_dir`` set the shards each map one shared uncompressed ``.npz``
snapshot (:meth:`~repro.oracle.SensitivityOracle.load` with
``mmap_mode="r"``), so N workers — or N processes in a real deployment
— share a single page-cached copy.

Generation swaps are torn-read-free by construction: the shard's
``(generation, oracle)`` pair lives in one tuple attribute, every
batch dispatch snapshots that tuple once, and a swap replaces the
tuple wholesale. In-flight batches finish on the generation they
started on; the next batch sees the new one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ValidationError
from ..oracle import SensitivityOracle
from .metrics import ShardMetrics

__all__ = ["ShardSpec", "OracleShard", "plan_shards", "route"]


@dataclass(frozen=True)
class ShardSpec:
    """One contiguous edge-index range ``[edge_lo, edge_hi)``."""

    shard_id: int
    edge_lo: int
    edge_hi: int

    def __len__(self) -> int:
        return self.edge_hi - self.edge_lo


def plan_shards(m: int, n_shards: int) -> List[ShardSpec]:
    """Split ``[0, m)`` into ``n_shards`` near-equal contiguous ranges."""
    if n_shards < 1:
        raise ValidationError("need at least one shard")
    n_shards = min(n_shards, m) or 1
    base, rem = divmod(m, n_shards)
    specs, lo = [], 0
    for i in range(n_shards):
        hi = lo + base + (1 if i < rem else 0)
        specs.append(ShardSpec(shard_id=i, edge_lo=lo, edge_hi=hi))
        lo = hi
    return specs


def route(specs: List[ShardSpec], edge: int) -> int:
    """Shard index owning ``edge`` (ranges are contiguous and sorted)."""
    m = specs[-1].edge_hi
    if not 0 <= edge < m:
        raise ValidationError(f"edge index {edge} out of range [0, {m})")
    # equal split up to a +1 remainder: guess then correct at most once
    i = min(edge * len(specs) // m, len(specs) - 1)
    while edge < specs[i].edge_lo:
        i -= 1
    while edge >= specs[i].edge_hi:
        i += 1
    return i


class OracleShard:
    """One worker slot: a range spec + the current (generation, oracle)."""

    def __init__(self, spec: ShardSpec, oracle: SensitivityOracle,
                 generation: int = 0):
        self.spec = spec
        self._state: Tuple[int, SensitivityOracle] = (generation, oracle)
        self.metrics = ShardMetrics()

    @property
    def generation(self) -> int:
        return self._state[0]

    @property
    def oracle(self) -> SensitivityOracle:
        return self._state[1]

    def snapshot(self) -> Tuple[int, SensitivityOracle]:
        """The consistent pair a batch dispatch must read exactly once."""
        return self._state

    def swap(self, oracle: SensitivityOracle, generation: int) -> None:
        """Atomically publish a new oracle generation."""
        self._state = (generation, oracle)
        self.metrics.swaps += 1

    def reprice(self, edge: int, new_weight: float) -> None:
        """In-place oracle-preserving patch (no generation bump)."""
        self._state[1].reprice(edge, new_weight)
        self.metrics.patched += 1
