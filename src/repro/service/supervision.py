"""Worker supervision: death detection, respawn, and snapshot catch-up.

The router tier (DESIGN.md §6.2) ships durable, digest-addressed
state — every generation a primary publishes is a content-hashed
``.npz`` any process can verify and mmap. This module turns that into
*self-healing*: a :class:`Supervisor` owned by the
:class:`~repro.service.router.RouterTier` that keeps the fleet serving
through worker crashes, severed connections, and wedged processes.

Three pieces:

* **GenerationLedger** — the router-side record of every published
  generation per instance ``(path, digest, generation)`` *plus the
  patch log*: threshold-preserving re-pricings are applied in place on
  replicas without a new snapshot, so a rejoining worker that only
  adopted the latest snapshot would silently miss them. Catch-up is
  therefore *adopt the ledger's latest snapshot, then replay its patch
  log in order* — classification is deterministic, so the replay lands
  the worker bit-identical to the surviving replicas.

* **RestartPolicy** — bounded respawn: exponential backoff between
  attempts, at most ``max_restarts`` inside a sliding window, then
  permanent eviction. Eviction removes the worker from the rendezvous
  hash, and every instance it hosted remaps onto the survivors with
  the placement's minimal-movement guarantee (only the evicted
  worker's slots move).

* **Supervisor** — the watch loop. Death is detected three ways:
  the process sentinel (``proc.is_alive()``), a periodic ``ping``
  heartbeat over the telemetry link, and data-path reports — any
  forward or fan-out that hits a ``disconnected`` error calls
  :meth:`Supervisor.notify_suspect`, which *synchronously* takes the
  worker out of rotation before scheduling recovery. Recovery prefers
  the cheap path: if the process is alive and only its connections
  died (a severed link, not a crash), the links are re-dialled in
  place. Otherwise the process is respawned under the restart policy.
  Either way the worker re-enters the read rotation one instance at a
  time, gated behind ledger catch-up under that instance's update
  lock — readers never see a rejoined worker that is behind.

The same per-instance machinery powers *resync*: a replica whose
patch/swap acknowledgement failed is marked stale for that instance
(excluded from its reads) and re-aligned from the ledger — silent
replica divergence is structurally impossible as long as the ledger
records every mutation, which the router's write path guarantees.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import ServiceError, ValidationError
from .metrics import SupervisorMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .router import RouterTier, _Worker

__all__ = ["GenerationLedger", "LedgerEntry", "RestartPolicy",
           "Supervisor"]


@dataclass
class LedgerEntry:
    """The latest published generation of one instance + its patch log."""

    path: str
    digest: str
    generation: int
    patches: List[Tuple[int, float]] = field(default_factory=list)


class GenerationLedger:
    """Router-side record of everything a rejoining worker must adopt.

    ``record_publish`` supersedes the entry (a published snapshot
    embeds every prior patch, so the log resets); ``record_patch``
    appends an in-place re-pricing that replicas applied without a new
    snapshot. ``latest`` is the catch-up contract: adopt the snapshot,
    replay the patches, and the worker is bit-identical to the fleet.
    """

    def __init__(self):
        self._entries: Dict[str, LedgerEntry] = {}

    def record_publish(self, instance: str, path: str, digest: str,
                       generation: int) -> None:
        prev = self._entries.get(instance)
        if prev is not None and int(generation) < prev.generation:
            raise ValidationError(
                f"ledger regression for {instance!r}: generation "
                f"{generation} after {prev.generation}")
        self._entries[instance] = LedgerEntry(
            path=path, digest=digest, generation=int(generation))

    def record_patch(self, instance: str, edge: int, weight: float) -> None:
        self._latest(instance).patches.append((int(edge), float(weight)))

    def latest(self, instance: str) -> LedgerEntry:
        return self._latest(instance)

    def _latest(self, instance: str) -> LedgerEntry:
        entry = self._entries.get(instance)
        if entry is None:
            raise ValidationError(f"no ledger entry for {instance!r}")
        return entry

    def instances(self) -> List[str]:
        return sorted(self._entries)

    def snapshot(self) -> Dict:
        return {
            name: {"generation": e.generation, "digest": e.digest[:16],
                   "patches": len(e.patches)}
            for name, e in self._entries.items()
        }


class RestartPolicy:
    """Bounded respawn: exponential backoff, then permanent eviction.

    ``next_delay`` returns the backoff before the next respawn attempt
    of that worker, or ``None`` once the worker burned
    ``max_restarts`` attempts inside the sliding window — the
    supervisor's cue to evict it from the placement for good.
    """

    def __init__(self, max_restarts: int = 5, window_s: float = 60.0,
                 backoff_s: float = 0.1, backoff_cap_s: float = 5.0):
        self.max_restarts = max(1, int(max_restarts))
        self.window_s = float(window_s)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self._attempts: Dict[int, List[float]] = {}

    def next_delay(self, worker_id: int,
                   now: Optional[float] = None) -> Optional[float]:
        t = time.monotonic() if now is None else now
        recent = [s for s in self._attempts.get(worker_id, ())
                  if t - s < self.window_s]
        if len(recent) >= self.max_restarts:
            self._attempts[worker_id] = recent
            return None
        delay = min(self.backoff_cap_s, self.backoff_s * (2 ** len(recent)))
        recent.append(t)
        self._attempts[worker_id] = recent
        return delay

    def attempts_in_window(self, worker_id: int,
                           now: Optional[float] = None) -> int:
        t = time.monotonic() if now is None else now
        return len([s for s in self._attempts.get(worker_id, ())
                    if t - s < self.window_s])


class Supervisor:
    """Keeps the router's worker fleet alive, current, and in rotation."""

    def __init__(self, router: "RouterTier"):
        self.router = router
        cfg = router.config
        self.enabled = bool(getattr(cfg, "supervise", True))
        self.ledger = GenerationLedger()
        self.metrics = SupervisorMetrics()
        self.policy = RestartPolicy(
            max_restarts=cfg.max_restarts,
            window_s=cfg.restart_window_s,
            backoff_s=cfg.restart_backoff_s,
        )
        self._watch_task: Optional[asyncio.Task] = None
        self._recovering: Dict[int, asyncio.Task] = {}
        self._resyncs: set = set()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        if self.enabled and self._watch_task is None:
            self._watch_task = asyncio.get_running_loop().create_task(
                self._watch())

    async def stop(self) -> None:
        tasks = [t for t in (self._watch_task, *self._recovering.values(),
                             *self._resyncs) if t is not None]
        self._watch_task = None
        for t in tasks:
            t.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._recovering.clear()
        self._resyncs.clear()

    # -- death detection -------------------------------------------------------

    def notify_suspect(self, w: "_Worker") -> None:
        """Take ``w`` out of rotation *now*; recover it asynchronously.

        Synchronous on purpose: the caller just observed a disconnect
        (or the watch loop a dead sentinel), and the very next
        ``_pick_worker`` must already skip this worker. Idempotent
        while a recovery for the same worker is in flight.
        """
        w.up = False
        w.depth = {}
        if not self.enabled or self.router._stopped:
            return
        if w.worker_id in self._recovering:
            return
        self.metrics.deaths_detected += 1
        task = asyncio.get_running_loop().create_task(self._recover(w))
        self._recovering[w.worker_id] = task

    async def _watch(self) -> None:
        """Sentinel + heartbeat loop over every in-rotation worker."""
        cfg = self.router.config
        while True:
            await asyncio.sleep(cfg.heartbeat_s)
            for w in list(self.router.workers.values()):
                if not w.up or self.router._stopped:
                    continue
                if not w.proc.is_alive():
                    self.notify_suspect(w)
                    continue
                if any(link._dead for link in w.all_links()):
                    # severed connection on a live process: re-dial in
                    # place (no respawn, no catch-up needed — a dead
                    # *control* link already marked fan-out targets
                    # stale, and those resync via the ledger)
                    if await self._try_heal(w):
                        self.router._start_poller(w)
                    else:
                        self.notify_suspect(w)
                    continue
                try:
                    await w.telemetry.request({"op": "ping"},
                                              timeout_s=cfg.heartbeat_timeout_s)
                except (ServiceError, asyncio.TimeoutError):
                    self.notify_suspect(w)

    # -- recovery --------------------------------------------------------------

    async def _recover(self, w: "_Worker") -> None:
        t0 = time.perf_counter()
        force_respawn = False
        try:
            while True:
                try:
                    if (not force_respawn and w.proc.is_alive()
                            and await self._try_heal(w)):
                        pass  # connections re-dialled; process was fine
                    else:
                        delay = self.policy.next_delay(w.worker_id)
                        if delay is None:
                            await self._evict(w)
                            return
                        await self._ensure_dead(w)
                        await asyncio.sleep(delay)
                        await self.router._respawn_worker(w)
                        self.metrics.restarts += 1
                    await self._catch_up(w)
                except ServiceError:
                    # a heal that cannot catch up (diverged state, a
                    # vanished snapshot) must not ping-pong: the next
                    # attempt replaces the process under the bounded
                    # policy instead of re-dialling forever
                    w.up = False
                    force_respawn = True
                    continue
                break
            self.router._start_poller(w)
            dt = time.perf_counter() - t0
            self.metrics.recovery.extend([dt])
            self.metrics.degraded_s += dt
        except asyncio.CancelledError:
            raise
        finally:
            self._recovering.pop(w.worker_id, None)

    async def _try_heal(self, w: "_Worker") -> bool:
        """Re-dial dead links to a live process; verify with a ping."""
        from .router import BinaryWorkerLink, WorkerLink

        host = self.router.config.worker_host
        healed = 0
        try:
            for i, link in enumerate(w.links):
                if link._dead:
                    await link.close()
                    w.links[i] = await WorkerLink.connect(host, w.port, 5.0)
                    healed += 1
            # binary relay links re-negotiate on dial: the hello
            # re-dictates the router's full symbol table, which is
            # idempotent on a live process and restores id order on one
            # whose table was lost
            names = self.router.wire_symbols.names()
            for i, link in enumerate(w.bin_links):
                if link._dead:
                    await link.close()
                    w.bin_links[i] = await BinaryWorkerLink.connect(
                        host, w.port, names, 5.0)
                    healed += 1
                    w.wire_version = max(w.wire_version, len(names))
            if w.control._dead:
                await w.control.close()
                w.control = await WorkerLink.connect(host, w.port, 5.0)
                healed += 1
            if w.telemetry._dead:
                await w.telemetry.close()
                w.telemetry = await WorkerLink.connect(host, w.port, 5.0)
                healed += 1
            await w.telemetry.request({"op": "ping"}, timeout_s=5.0)
        except (ServiceError, asyncio.TimeoutError):
            return False
        self.metrics.links_healed += healed
        return True

    async def _ensure_dead(self, w: "_Worker") -> None:
        loop = asyncio.get_running_loop()
        if w.proc.is_alive():
            w.proc.terminate()
            await loop.run_in_executor(None, w.proc.join, 5.0)
        if w.proc.is_alive():  # pragma: no cover - stuck process
            w.proc.kill()
            await loop.run_in_executor(None, w.proc.join, 5.0)
        for link in w.all_links():
            await link.close()

    async def _catch_up(self, w: "_Worker") -> None:
        """Gate re-entry behind per-instance ledger catch-up.

        The worker flips ``up`` first but with every hosted instance
        marked stale, so reads keep skipping it per instance until that
        instance's snapshot is adopted and its patch log replayed —
        both under the instance's update lock, so no mutation can slip
        between the snapshot and the replay. Instances that get placed
        onto this worker *while* it drains (a concurrent
        ``add_instance``) land in ``stale`` too and drain in the same
        loop.
        """
        hosted = [name for name, placed in self.router.instances.items()
                  if w.worker_id in placed.replicas]
        w.stale.update(hosted)
        w.depth = {}
        w.up = True
        while w.stale:
            await self.sync_instance(w, next(iter(w.stale)))

    async def sync_instance(self, w: "_Worker", name: str) -> None:
        """Re-align one instance on ``w`` from the ledger.

        Adopt (idempotent on the worker — an already-registered
        instance swaps) the latest published snapshot, then replay the
        patch log in order. Classification is deterministic, so every
        replayed re-pricing patches exactly as it did on the primary;
        anything else means the worker's state diverged from the
        ledger's and is treated as a fresh failure.
        """
        placed = self.router.instances.get(name)
        if placed is None:
            w.stale.discard(name)
            return
        async with placed.lock:
            if name not in w.stale:
                return
            entry = self.ledger.latest(name)
            resp = await w.control.request(
                {"op": "adopt", "instance": name, "path": entry.path,
                 "digest": entry.digest, "generation": entry.generation})
            if not resp.get("ok"):
                raise ServiceError(
                    f"worker {w.worker_id} failed catch-up adopt of "
                    f"{name!r}: {resp.get('error')}")
            for edge, weight in entry.patches:
                ack = await w.control.request(
                    {"op": "update", "instance": name, "edge": edge,
                     "weight": weight})
                if ack.get("action") != "patched":
                    raise ServiceError(
                        f"worker {w.worker_id} diverged replaying patch "
                        f"({edge}, {weight}) of {name!r}: got "
                        f"{ack.get('action') or ack.get('error')!r}")
            w.stale.discard(name)
            self.metrics.resyncs += 1

    def schedule_resync(self, w: "_Worker", name: str) -> None:
        """Async stale-replica repair (failed patch/swap fan-out)."""
        if not self.enabled or self.router._stopped:
            return

        async def _run() -> None:
            try:
                await self.sync_instance(w, name)
            except ServiceError:
                self.notify_suspect(w)

        task = asyncio.get_running_loop().create_task(_run())
        self._resyncs.add(task)
        task.add_done_callback(self._resyncs.discard)

    # -- eviction --------------------------------------------------------------

    async def _evict(self, w: "_Worker") -> None:
        """Permanently remove a worker that burned its restart budget.

        The rendezvous hash guarantees minimal movement: removing the
        worker remaps exactly the slots it held. Each affected
        instance's replica set is recomputed and any worker that
        *gained* a slot catches up from the ledger before serving it.
        """
        router = self.router
        self.metrics.evictions += 1
        await self._ensure_dead(w)
        router._stop_poller(w)
        router.placement.remove_worker(w.worker_id)
        router.workers.pop(w.worker_id, None)
        for name, placed in list(router.instances.items()):
            if w.worker_id not in placed.replicas:
                continue
            async with placed.lock:
                old = set(placed.replicas)
                placed.replicas = router.placement.replicas(
                    name, router.config.replication)
                placed.rr = 0
                added = [wid for wid in placed.replicas if wid not in old]
            for wid in added:
                gained = router.workers.get(wid)
                if gained is None:
                    continue
                gained.stale.add(name)
                self.schedule_resync(gained, name)
