"""One router-tier worker: a service process that adopts snapshots.

A worker process runs a full :class:`~repro.service.server.
SensitivityService` (shards, micro-batchers, update path) plus the
three control ops the router tier needs:

``adopt``
    Register an instance from a shipped, digest-addressed oracle
    snapshot: verify the file's content hash against the advertised
    digest, memory-map it (one page-cached copy shared by every worker
    process on the box), reconstruct the authoritative graph from the
    snapshot's own edge arrays, and start serving at the shipped
    generation. No pipeline stage runs — adoption is O(mmap).
    Re-adopting an already-registered instance is idempotent: it
    routes through ``swap``, which is how a rejoining or resyncing
    replica re-aligns with the router's generation ledger.

``swap``
    Zero-downtime generation swap: verify + map a newer snapshot and
    atomically publish it to every shard (the same one-tuple swap the
    in-process update path uses), while in-flight batches finish on
    the generation they started on. This is how a replica follows a
    rebuild that happened *once* on the primary — the router ships the
    digest and path, never the work.

``depth`` (inherited)
    The queue-depth report the router polls for backpressure.

The module-level :func:`worker_entry` is the ``multiprocessing`` target
(explicit forkserver/spawn context — the same discipline as
:mod:`repro.mpc.parallel`): it boots the service, binds TCP on an
ephemeral port, reports ``("ready", worker_id, port)`` through its
pipe, and serves until a ``shutdown`` op arrives.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ValidationError
from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig
from ..oracle import SensitivityOracle
from ..pipeline import ArtifactStore
from ..serialize import file_digest
from .batching import MicroBatcher
from .server import SensitivityService, ServiceConfig, _Instance
from .shards import OracleShard, plan_shards
from .updates import InstanceUpdater

__all__ = ["WorkerSpec", "WorkerService", "worker_entry"]


@dataclass
class WorkerSpec:
    """Plain-field worker bootstrap config (crosses the spawn pipe)."""

    worker_id: int
    host: str = "127.0.0.1"
    shards: int = 2
    max_batch: int = 512
    batch_window_s: float = 0.002
    queue_depth: int = 4096
    engine: str = "local"
    delta: float = 0.35
    oracle_labels: bool = True
    mmap_dir: Optional[str] = None
    cache_dir: Optional[str] = None

    def service_config(self) -> ServiceConfig:
        config = (MPCConfig(delta=self.delta)
                  if self.engine == "distributed" else None)
        return ServiceConfig(
            shards=self.shards, max_batch=self.max_batch,
            batch_window_s=self.batch_window_s,
            queue_depth=self.queue_depth, engine=self.engine,
            oracle_labels=self.oracle_labels, config=config,
            cache_dir=self.cache_dir, mmap_dir=self.mmap_dir,
            host=self.host, port=0,
        )


def _verified_load(path: str, digest: str, n_copies: int):
    """Digest-check ``path`` once, then map it ``n_copies`` times.

    Returns ``n_copies`` independent :class:`SensitivityOracle` objects
    over the same page-cached bytes (each shard patches copy-on-write
    independently, exactly like
    :meth:`~repro.service.updates.InstanceUpdater.shard_oracles`).
    """
    actual = file_digest(path)
    if actual != digest:
        raise ValidationError(
            f"snapshot digest mismatch for {path!r}: "
            f"advertised {digest[:16]}…, file is {actual[:16]}…"
        )
    return [SensitivityOracle.load(path, mmap_mode="r")
            for _ in range(n_copies)]


class WorkerService(SensitivityService):
    """A :class:`SensitivityService` that can adopt shipped snapshots."""

    async def handle_request(self, req: Dict) -> Dict:
        op = req.get("op")
        if op == "adopt":
            resp = await self._adopt(req)
        elif op == "swap":
            resp = await self._swap(req)
        else:
            return await super().handle_request(req)
        if "id" in req:
            resp["id"] = req["id"]
        return resp

    # -- snapshot adoption -----------------------------------------------------

    def adopt_instance(self, name: str, path: str, digest: str,
                       generation: int = 0) -> None:
        """Register ``name`` from a digest-addressed snapshot file."""
        if name in self.instances:
            raise ValidationError(f"instance {name!r} already registered")
        cfg = self.config
        specs = plan_shards(self._snapshot_m(path, digest), cfg.shards)
        oracles = _verified_load(path, digest, len(specs) + 1)
        template = oracles[-1]
        # the authoritative graph is reconstructed from the snapshot's
        # own edge arrays (private writable copies; the big threshold /
        # topology arrays stay mapped and shared)
        graph = WeightedGraph(
            n=len(template.parent), u=template.u.copy(),
            v=template.v.copy(), w=template.w.copy(),
            tree_mask=template.tree_mask.copy(),
        )
        store = (ArtifactStore(cache_dir=cfg.cache_dir)
                 if cfg.cache_dir is not None else ArtifactStore())
        updater = InstanceUpdater(
            name, graph, template, engine=cfg.engine, config=cfg.config,
            oracle_labels=cfg.oracle_labels, store=store,
            mmap_dir=cfg.mmap_dir,
        )
        updater.generation = int(generation)
        updater.snapshot_path = path
        updater.snapshot_digest = digest
        shards = [OracleShard(spec, orc, generation=int(generation))
                  for spec, orc in zip(specs, oracles)]
        batchers = [
            MicroBatcher(s, max_batch=cfg.max_batch,
                         window_s=cfg.batch_window_s,
                         queue_depth=cfg.queue_depth)
            for s in shards
        ]
        inst = _Instance(name=name, updater=updater, shards=shards,
                         batchers=batchers)
        self.instances[name] = inst
        if self._started:
            for b in batchers:
                b.start()

    def _snapshot_m(self, path: str, digest: str) -> int:
        # edge count comes from the snapshot itself; one cheap map
        probe = SensitivityOracle.load(path, mmap_mode="r")
        return len(probe)

    async def _adopt(self, req: Dict) -> Dict:
        try:
            name = req["instance"]
            if name in self.instances:
                # idempotent re-adopt: a rejoining or resyncing worker
                # re-aligns an already-registered instance via the
                # atomic swap path instead of erroring out
                return await self._swap(req)
            self.adopt_instance(name, req["path"], req["digest"],
                                int(req.get("generation", 0)))
        except (KeyError, ValidationError, OSError, ValueError) as exc:
            return {"ok": False, "error": f"adopt failed: {exc}"}
        inst = self.instances[name]
        return {"ok": True,
                "result": {"instance": name, "m": inst.updater.graph.m,
                           "generation": inst.updater.generation}}

    async def _swap(self, req: Dict) -> Dict:
        """Atomically adopt a newer generation under live reads.

        A same-``m`` swap (a re-priced edge rebuilt on the primary) is
        an in-place shard swap. A structural generation (the primary
        applied an ``update_batch`` that grew or shrank the edge set)
        re-plans the edge-range shards for the new ``m``, rebuilds the
        shard/batcher tuples and swaps them in one synchronous block —
        the same discipline as the in-process install, so concurrent
        routing sees old or new, never a mix.
        """
        try:
            name = req["instance"]
            path, digest = req["path"], req["digest"]
            generation = int(req["generation"])
            inst = self._instance(name)
        except (KeyError, ValidationError, ValueError) as exc:
            return {"ok": False, "error": f"swap failed: {exc}"}
        cfg = self.config
        old_batchers = []
        async with inst.lock:  # serialise against local updates
            new_m = self._snapshot_m(path, digest)
            m_changed = inst.updater.graph.m != new_m
            specs = (plan_shards(new_m, cfg.shards) if m_changed
                     else [s.spec for s in inst.shards])
            try:
                oracles = await asyncio.get_running_loop().run_in_executor(
                    None, _verified_load, path, digest, len(specs) + 1)
            except (ValidationError, OSError, ValueError) as exc:
                return {"ok": False, "error": f"swap failed: {exc}"}
            updater = inst.updater
            template = oracles[-1]
            updater.oracle = template
            updater.generation = generation
            updater.snapshot_path = path
            updater.snapshot_digest = digest
            if len(template) == updater.graph.m:
                # refresh the authoritative weights (and tree membership
                # — a rebuilt re-pricing can swap edges in or out of the
                # candidate tree) from the new generation
                updater.graph.w[:] = template.w
                updater.graph.tree_mask[:] = template.tree_mask
                for shard, orc in zip(inst.shards, oracles):
                    shard.swap(orc, generation)
            else:
                # structural generation: new authoritative graph + a
                # fresh shard plan over the new edge count
                updater.graph = WeightedGraph(
                    n=len(template.parent), u=template.u.copy(),
                    v=template.v.copy(), w=template.w.copy(),
                    tree_mask=template.tree_mask.copy(),
                )
                updater.last_run = None
                updater._splice_fp = None
                shards = [OracleShard(spec, orc, generation=generation)
                          for spec, orc in zip(specs, oracles)]
                for new, old in zip(shards, inst.shards):
                    new.metrics = old.metrics
                batchers = [
                    MicroBatcher(s, max_batch=cfg.max_batch,
                                 window_s=cfg.batch_window_s,
                                 queue_depth=cfg.queue_depth)
                    for s in shards
                ]
                old_batchers = inst.batchers
                inst.shards = shards      # synchronous swap: no await
                inst.batchers = batchers  # between the two assignments
                if self._started:
                    for b in batchers:
                        b.start()
                for s in inst.shards:
                    s.metrics.swaps += 1
        for b in old_batchers:
            await b.stop()
        return {"ok": True,
                "result": {"instance": name, "generation": generation,
                           "m": inst.updater.graph.m}}


async def _worker_async(conn, spec: WorkerSpec) -> None:
    service = WorkerService(spec.service_config())
    await service.start(serve_tcp=True)
    host, port = service.tcp_address
    conn.send(("ready", spec.worker_id, port))
    conn.close()
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def worker_entry(conn, spec: WorkerSpec) -> None:
    """``multiprocessing`` target: run one worker until shutdown."""
    asyncio.run(_worker_async(conn, spec))
