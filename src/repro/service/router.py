"""The router tier: one front door over N worker processes.

``repro route`` (or ``repro serve --workers N``) runs a
:class:`RouterTier`: a process that owns the public TCP listener and
consistent-hash-places graph instances onto worker processes, each of
which runs a full :class:`~repro.service.worker_proc.WorkerService`
(shards x micro-batchers x update path) in its own interpreter — the
fleet discipline of the paper's MPC model applied to the serving
substrate itself. The router holds no oracle state; it holds *routing*
state:

* **placement** — rendezvous hashing (:mod:`repro.service.placement`)
  maps each instance to a primary worker plus ``replication - 1``
  replicas. Reads fan out round-robin across the replica set (hot
  instances use the whole set); writes always go to the primary.
* **snapshot shipping** — an instance is introduced to its workers by
  ``adopt``: the router publishes one digest-addressed, uncompressed
  ``.npz`` snapshot and every replica memory-maps the same page-cached
  file. A structure-changing update rebuilds **once** on the primary,
  which publishes the new generation's snapshot; the router then ships
  only ``(path, digest, generation)`` to the replicas, whose ``swap``
  is an mmap + atomic shard-tuple swap under live reads — zero
  pipeline work, zero downtime, bit-identical answers per generation.
* **backpressure** — workers report per-instance queue depth
  (``depth`` op, polled on a dedicated telemetry link); once a
  worker's fraction of its queue bound crosses the shed watermark the
  router sheds *before* forwarding, so overload answers come from the
  cheap tier and saturated workers drain instead of queueing deeper.

Forwarding is deliberately thin: worker links are pipelined JSON-lines
connections with FIFO correlation (the service writes responses in
request order), and on the hot read path the router forwards the
client's raw request line and relays the worker's raw response line —
one ``json.loads`` for routing, zero re-serialisation.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ServiceError, ValidationError
from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig
from ..mpc.parallel import get_context
from ..oracle import SensitivityOracle, build_oracle
from ..serialize import file_digest
from .batching import QUERY_OPS
from .metrics import RouterMetrics
from .placement import Placement
from .worker_proc import WorkerSpec, worker_entry

__all__ = ["RouterConfig", "RouterTier", "WorkerLink"]


@dataclass
class RouterConfig:
    """Deployment knobs for one router process and its worker fleet."""

    workers: int = 2                 #: worker processes to spawn
    replication: int = 2             #: replicas per instance (cap: workers)
    shards: int = 2                  #: edge-range shards per instance/worker
    max_batch: int = 512
    batch_window_s: float = 0.002
    queue_depth: int = 4096
    engine: str = "local"
    delta: float = 0.35
    oracle_labels: bool = True
    host: str = "127.0.0.1"          #: front-door bind address
    port: int = 7465                 #: front-door port (0 picks a free one)
    worker_host: str = "127.0.0.1"   #: where workers bind (loopback fleet)
    mmap_dir: Optional[str] = None   #: snapshot spool (default: a tempdir)
    cache_dir: Optional[str] = None  #: per-worker artifact cache root
    query_links: int = 2             #: pipelined query connections per worker
    shed_watermark: float = 0.9      #: depth fraction that trips router shed
    depth_poll_s: float = 0.02       #: telemetry poll interval
    spawn_timeout_s: float = 120.0   #: worker boot handshake budget


class WorkerLink:
    """One pipelined JSON-lines connection with FIFO correlation.

    The service endpoint writes responses strictly in request order, so
    correlation is a deque of futures: the k-th response line resolves
    the k-th outstanding request. Many requests ride one connection
    concurrently; a lost connection fails every outstanding future with
    a structured :class:`~repro.errors.ServiceError` instead of leaking
    ``ConnectionResetError`` into the router's forwarding paths.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: deque = deque()
        self._dead = False
        self._task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int,
                      timeout_s: float = 10.0) -> "WorkerLink":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout_s)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceError(f"worker connect {host}:{port} failed: {exc}",
                               kind="disconnected")
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if self._pending:
                    fut = self._pending.popleft()
                    if not fut.done():
                        fut.set_result(line)
        except (ConnectionError, OSError):
            pass
        finally:
            self._dead = True
            while self._pending:
                fut = self._pending.popleft()
                if not fut.done():
                    fut.set_exception(ServiceError(
                        "worker connection lost with requests in flight",
                        kind="disconnected"))

    async def request_raw(self, line: bytes) -> bytes:
        """Send one already-framed request line, await its response line."""
        if self._dead:
            raise ServiceError("worker link is down", kind="disconnected")
        fut = asyncio.get_running_loop().create_future()
        self._pending.append(fut)       # append + write: one atomic step
        self._writer.write(line)
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            if not fut.done():
                self._pending.remove(fut)
                fut.cancel()
            raise ServiceError(f"worker link write failed: {exc}",
                               kind="disconnected")
        return await fut

    async def request(self, req: Dict,
                      timeout_s: Optional[float] = None) -> Dict:
        """Parsed request/response (control + telemetry paths)."""
        line = (json.dumps(req) + "\n").encode()
        if timeout_s is None:
            raw = await self.request_raw(line)
        else:
            raw = await asyncio.wait_for(self.request_raw(line), timeout_s)
        return json.loads(raw)

    async def close(self) -> None:
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass
class _Worker:
    """Router-side handle to one spawned worker process."""

    worker_id: int
    proc: object
    port: int
    links: List[WorkerLink]          #: pipelined query links (round-robin)
    control: WorkerLink              #: adopt/swap/update/shutdown
    telemetry: WorkerLink            #: depth polls + metrics scrapes
    depth: Dict = field(default_factory=dict)
    rr: int = 0

    def next_link(self) -> WorkerLink:
        self.rr += 1
        return self.links[self.rr % len(self.links)]


@dataclass
class _Placed:
    """One routed instance: its replica set and routing facts."""

    name: str
    m: int
    n: int
    m_tree: int
    replicas: List[int]              #: worker ids, primary first
    generation: int = 0
    rr: int = 0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class RouterTier:
    """Front door + placement + snapshot shipping over worker processes."""

    PIPELINE_LIMIT = 1024

    def __init__(self, config: Optional[RouterConfig] = None):
        self.config = config or RouterConfig()
        if self.config.workers < 1:
            raise ValidationError("router needs at least one worker")
        self.placement = Placement()
        self.workers: Dict[int, _Worker] = {}
        self.instances: Dict[str, _Placed] = {}
        self.metrics = RouterMetrics()
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self._pollers: List[asyncio.Task] = []
        self._spool = self.config.mmap_dir
        self._own_spool: Optional[tempfile.TemporaryDirectory] = None
        self._fwd_count = 0
        self._stopped = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self, serve_tcp: bool = False) -> None:
        """Spawn + handshake the fleet, then (optionally) open the door."""
        if self._spool is None:
            self._own_spool = tempfile.TemporaryDirectory(
                prefix="repro-router-")
            self._spool = self._own_spool.name
        os.makedirs(self._spool, exist_ok=True)
        ctx = get_context()
        boots = []
        for wid in range(self.config.workers):
            parent_conn, child_conn = ctx.Pipe()
            spec = WorkerSpec(
                worker_id=wid, host=self.config.worker_host,
                shards=self.config.shards, max_batch=self.config.max_batch,
                batch_window_s=self.config.batch_window_s,
                queue_depth=self.config.queue_depth,
                engine=self.config.engine, delta=self.config.delta,
                oracle_labels=self.config.oracle_labels,
                mmap_dir=os.path.join(self._spool, f"worker{wid}"),
                cache_dir=(os.path.join(self.config.cache_dir, f"worker{wid}")
                           if self.config.cache_dir else None),
            )
            proc = ctx.Process(target=worker_entry,
                               args=(child_conn, spec), daemon=True)
            proc.start()
            child_conn.close()
            boots.append((wid, proc, parent_conn))
        loop = asyncio.get_running_loop()
        deadline = time.perf_counter() + self.config.spawn_timeout_s
        for wid, proc, conn in boots:
            try:
                budget = max(0.1, deadline - time.perf_counter())
                msg = await asyncio.wait_for(
                    loop.run_in_executor(None, conn.recv), budget)
            except (asyncio.TimeoutError, EOFError, OSError):
                await self._kill_boots(boots)
                raise ServiceError(
                    f"worker {wid} failed its boot handshake within "
                    f"{self.config.spawn_timeout_s:.0f}s",
                    kind="disconnected")
            finally:
                conn.close()
            assert msg[0] == "ready" and msg[1] == wid
            port = int(msg[2])
            links = [await WorkerLink.connect(self.config.worker_host, port)
                     for _ in range(max(1, self.config.query_links))]
            control = await WorkerLink.connect(self.config.worker_host, port)
            telemetry = await WorkerLink.connect(self.config.worker_host,
                                                 port)
            self.workers[wid] = _Worker(
                worker_id=wid, proc=proc, port=port, links=links,
                control=control, telemetry=telemetry)
            self.placement.add_worker(wid)
        self.started_at = time.perf_counter()
        for w in self.workers.values():
            self._pollers.append(
                asyncio.get_running_loop().create_task(self._poll_depth(w)))
        if serve_tcp:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port)

    async def _kill_boots(self, boots) -> None:
        for _wid, proc, _conn in boots:
            if proc.is_alive():
                proc.terminate()

    @property
    def tcp_address(self) -> Optional[tuple]:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        await self._shutdown.wait()

    async def stop(self) -> None:
        """Shut the whole tree down: door, pollers, workers, spool."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        for t in self._pollers:
            t.cancel()
        if self._pollers:
            await asyncio.gather(*self._pollers, return_exceptions=True)
        self._pollers = []
        loop = asyncio.get_running_loop()
        for w in self.workers.values():
            try:
                await w.control.request({"op": "shutdown"}, timeout_s=10.0)
            except (ServiceError, asyncio.TimeoutError):
                pass
            for link in (*w.links, w.control, w.telemetry):
                await link.close()
        for w in self.workers.values():
            await loop.run_in_executor(None, w.proc.join, 10.0)
            if w.proc.is_alive():  # pragma: no cover - stuck worker
                w.proc.terminate()
                await loop.run_in_executor(None, w.proc.join, 5.0)
        if self._own_spool is not None:
            self._own_spool.cleanup()
            self._own_spool = None
        self._shutdown.set()

    # -- instance placement ----------------------------------------------------

    async def add_instance(self, name: str, graph: WeightedGraph,
                           oracle: Optional[SensitivityOracle] = None
                           ) -> Dict:
        """Build (or adopt) generation 0 and ship it to the replica set.

        The oracle is built **once** (here, unless one is supplied),
        published as a digest-addressed snapshot, and adopted by every
        replica via mmap — N workers, one build, one page-cached copy.
        """
        if name in self.instances:
            raise ValidationError(f"instance {name!r} already registered")
        if not self.workers:
            raise ValidationError("router not started")
        cfg = self.config
        if oracle is None:
            config = (MPCConfig(delta=cfg.delta)
                      if cfg.engine == "distributed" else None)
            oracle = await asyncio.get_running_loop().run_in_executor(
                None, lambda: build_oracle(
                    graph, engine=cfg.engine, config=config,
                    oracle_labels=cfg.oracle_labels))
        tmp = os.path.join(self._spool, f".{name}-seed.tmp.npz")
        oracle.save(tmp, compressed=False)
        digest = file_digest(tmp)
        path = os.path.join(self._spool, f"{name}-{digest[:16]}.npz")
        os.replace(tmp, path)
        replicas = self.placement.replicas(name, cfg.replication)
        adopt = {"op": "adopt", "instance": name, "path": path,
                 "digest": digest, "generation": 0}
        results = await asyncio.gather(*(
            self.workers[wid].control.request(adopt) for wid in replicas))
        for wid, resp in zip(replicas, results):
            if not resp.get("ok"):
                raise ServiceError(
                    f"worker {wid} refused to adopt {name!r}: "
                    f"{resp.get('error')}")
        self.instances[name] = _Placed(
            name=name, m=graph.m, n=graph.n, m_tree=graph.m_tree,
            replicas=replicas)
        return {"instance": name, "replicas": replicas,
                "digest": digest, "path": path}

    # -- read path -------------------------------------------------------------

    def _placed(self, name: Optional[str]) -> _Placed:
        if name is None and len(self.instances) == 1:
            return next(iter(self.instances.values()))
        if name not in self.instances:
            raise ValidationError(
                f"unknown instance {name!r} "
                f"(have: {sorted(self.instances)})")
        return self.instances[name]

    def _pick_worker(self, placed: _Placed) -> Optional[_Worker]:
        """Round-robin over the replica set, skipping saturated workers.

        Returns ``None`` when every replica reports a queue depth past
        the shed watermark — the router's cue to shed at its own tier.
        """
        n = len(placed.replicas)
        for k in range(n):
            placed.rr += 1
            wid = placed.replicas[placed.rr % n]
            w = self.workers[wid]
            info = w.depth.get(placed.name)
            if info is not None and \
                    info.get("fraction", 0.0) >= self.config.shed_watermark:
                continue
            if wid != placed.replicas[0]:
                self.metrics.replica_hits += 1
            return w
        return None

    async def _forward_query_raw(self, req: Dict, line: bytes) -> bytes:
        """The hot path: route by instance, relay raw lines."""
        try:
            placed = self._placed(req.get("instance"))
        except ValidationError as exc:
            return self._frame({"ok": False, "error": str(exc)}, req)
        w = self._pick_worker(placed)
        if w is None:
            self.metrics.shed_router += 1
            return self._frame(
                {"ok": False, "shed": True, "where": "router",
                 "error": f"all {len(placed.replicas)} replica(s) of "
                          f"{placed.name!r} are past the shed watermark"},
                req)
        t0 = time.perf_counter()
        try:
            raw = await w.next_link().request_raw(line)
        except ServiceError as exc:
            self.metrics.worker_errors += 1
            return self._frame(
                {"ok": False, "error": str(exc),
                 "error_kind": "worker-disconnected"}, req)
        self.metrics.forwarded += 1
        self._fwd_count += 1
        if self._fwd_count % 16 == 0:  # stride-sampled router-side rtt
            self.metrics.latency.extend([time.perf_counter() - t0])
        return raw

    @staticmethod
    def _frame(resp: Dict, req: Dict) -> bytes:
        if "id" in req:
            resp["id"] = req["id"]
        return (json.dumps(resp) + "\n").encode()

    # -- write path ------------------------------------------------------------

    async def update(self, req: Dict) -> Dict:
        """Forward a weight update to the primary, then ship the result.

        * ``rebuilt`` — the primary already published the new
          generation's digest-addressed snapshot; ship ``swap`` to the
          other replicas and wait for every one to adopt it.
        * ``patched`` — fan the same (provably threshold-preserving)
          update out to the replicas; each applies the two-cell patch.
        * ``rejected`` — nothing to ship.
        """
        try:
            placed = self._placed(req.get("instance"))
        except ValidationError as exc:
            return {"ok": False, "error": str(exc)}
        primary = self.workers[placed.replicas[0]]
        fwd = {"op": "update", "instance": placed.name,
               "edge": req.get("edge", -1),
               "weight": req.get("weight", float("nan"))}
        async with placed.lock:  # one update in flight per instance
            self.metrics.updates += 1
            try:
                resp = await primary.control.request(fwd)
            except ServiceError as exc:
                self.metrics.worker_errors += 1
                return {"ok": False, "error": str(exc),
                        "error_kind": "worker-disconnected"}
            others = [self.workers[wid] for wid in placed.replicas[1:]]
            if resp.get("action") == "rebuilt" and others:
                await self._ship_swap(placed, resp, others)
            elif resp.get("action") == "patched" and others:
                acks = await asyncio.gather(
                    *(w.control.request(fwd) for w in others),
                    return_exceptions=True)
                self.metrics.patches_fanned += len(others)
                for w, ack in zip(others, acks):
                    if not (isinstance(ack, dict)
                            and ack.get("action") == "patched"):
                        self.metrics.worker_errors += 1
            if resp.get("action") == "rebuilt":
                placed.generation = int(resp["generation"])
        return resp

    async def _ship_swap(self, placed: _Placed, resp: Dict,
                         others: List[_Worker]) -> None:
        """Ship a primary rebuild's snapshot to the other replicas.

        The primary already published the digest-addressed file into
        the shared spool; replicas get ``(path, digest, generation)``
        and adopt by mmap — the rebuild itself never repeats.
        """
        swap = {"op": "swap", "instance": placed.name,
                "path": resp["snapshot_path"],
                "digest": resp["snapshot_digest"],
                "generation": resp["generation"]}
        t0 = time.perf_counter()
        acks = await asyncio.gather(
            *(w.control.request(swap) for w in others),
            return_exceptions=True)
        self.metrics.swap_latency.extend([time.perf_counter() - t0])
        self.metrics.swaps_shipped += len(others)
        resp["shipped_to"] = []
        for w, ack in zip(others, acks):
            ok = isinstance(ack, dict) and ack.get("ok")
            if not ok:
                self.metrics.worker_errors += 1
            resp["shipped_to"].append(
                {"worker": w.worker_id, "ok": bool(ok)})

    async def update_batch(self, req: Dict) -> Dict:
        """Forward a structural batch to the primary, ship the swap.

        The streaming write path is primary-only, exactly like point
        updates: the primary's ingestor coalesces and rebuilds once
        (scoped when the batch is non-tree-only), publishes the new
        generation's snapshot, and the router ships ``(path, digest,
        generation)`` to the replicas — whose ``swap`` re-plans shards
        when the edge count changed. Routing facts (``m``, ``m_tree``,
        generation) refresh from the batch report so new edge ids
        route immediately.
        """
        try:
            placed = self._placed(req.get("instance"))
        except ValidationError as exc:
            return {"ok": False, "error": str(exc)}
        primary = self.workers[placed.replicas[0]]
        fwd = {"op": "update_batch", "instance": placed.name,
               "ops": req.get("ops") or []}
        async with placed.lock:  # one structural change in flight
            self.metrics.updates += 1
            try:
                resp = await primary.control.request(fwd)
            except ServiceError as exc:
                self.metrics.worker_errors += 1
                return {"ok": False, "error": str(exc),
                        "error_kind": "worker-disconnected"}
            if resp.get("action") == "rebuilt":
                others = [self.workers[wid] for wid in placed.replicas[1:]]
                if others:
                    await self._ship_swap(placed, resp, others)
                placed.generation = int(resp["generation"])
                placed.m = int(resp.get("m", placed.m))
                placed.m_tree = int(resp.get("m_tree", placed.m_tree))
        return resp

    # -- introspection ---------------------------------------------------------

    def describe_instances(self) -> Dict:
        return {
            name: {
                "n": p.n, "m": p.m, "m_tree": p.m_tree,
                "generation": p.generation,
                "replicas": list(p.replicas),
                "primary": p.replicas[0],
            }
            for name, p in self.instances.items()
        }

    async def router_metrics(self) -> Dict:
        """Router counters + a scrape of every worker's own metrics."""
        uptime = (time.perf_counter() - self.started_at
                  if self.started_at is not None else 0.0)
        per_worker = {}
        scrapes = await asyncio.gather(
            *(w.telemetry.request({"op": "metrics"})
              for w in self.workers.values()),
            return_exceptions=True)
        total_q = total_shed = 0
        for w, scrape in zip(self.workers.values(), scrapes):
            if isinstance(scrape, dict) and scrape.get("ok"):
                m = scrape["result"]
                total_q += m["queries"]
                total_shed += m["shed"]
                per_worker[str(w.worker_id)] = m
            else:
                per_worker[str(w.worker_id)] = {"error": str(scrape)}
        return {
            "uptime_s": round(uptime, 3),
            "queries": total_q,
            "qps": round(total_q / uptime, 1) if uptime else 0.0,
            "shed_workers": total_shed,
            "router": self.metrics.snapshot(),
            "workers": per_worker,
        }

    # -- backpressure ----------------------------------------------------------

    async def _poll_depth(self, w: _Worker) -> None:
        """Telemetry loop: keep ``w.depth`` fresh for the shed check."""
        try:
            while True:
                try:
                    resp = await w.telemetry.request(
                        {"op": "depth"}, timeout_s=5.0)
                    if resp.get("ok"):
                        w.depth = resp["result"]
                        self.metrics.depth_polls += 1
                except (ServiceError, asyncio.TimeoutError):
                    self.metrics.worker_errors += 1
                    await asyncio.sleep(
                        max(0.2, self.config.depth_poll_s * 5))
                    if w.telemetry._dead:
                        return
                await asyncio.sleep(self.config.depth_poll_s)
        except asyncio.CancelledError:
            raise

    # -- dispatch --------------------------------------------------------------

    async def handle_request(self, req: Dict) -> Dict:
        """Parsed dispatch (in-process clients, tests, benchmarks)."""
        op = req.get("op")
        if op in QUERY_OPS:
            raw = await self._forward_query_raw(
                req, (json.dumps(req) + "\n").encode())
            return json.loads(raw)
        if op == "update":
            resp = await self.update(req)
        elif op == "update_batch":
            resp = await self.update_batch(req)
        elif op == "metrics":
            resp = {"ok": True, "result": await self.router_metrics()}
        elif op == "depth":
            resp = {"ok": True,
                    "result": {str(w.worker_id): w.depth
                               for w in self.workers.values()}}
        elif op == "instances":
            resp = {"ok": True, "result": self.describe_instances()}
        elif op == "ping":
            resp = {"ok": True, "result": "pong"}
        elif op == "shutdown":
            resp = {"ok": True, "result": "bye"}
        else:
            resp = {"ok": False, "error": f"unknown op {op!r}"}
        if "id" in req:
            resp["id"] = req["id"]
        return resp

    # -- TCP front door --------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Pipelined, in-order front door (the service's discipline).

        Query ops take the raw relay path — the original request line is
        forwarded and the worker's response line is written back without
        re-serialisation; everything else goes through parsed dispatch.
        """
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)
        order: asyncio.Queue = asyncio.Queue(maxsize=self.PIPELINE_LIMIT)

        async def write_in_order() -> None:
            while True:
                item = await order.get()
                if item is None:
                    return
                fut, is_shutdown = item
                try:
                    resp = await fut
                except Exception as exc:  # noqa: BLE001
                    resp = {"ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
                if isinstance(resp, (bytes, bytearray)):
                    writer.write(resp)
                else:
                    writer.write((json.dumps(resp) + "\n").encode())
                await writer.drain()
                if is_shutdown:
                    self._shutdown.set()
                    return

        loop = asyncio.get_running_loop()
        wtask = loop.create_task(write_in_order())
        try:
            while not wtask.done():
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    fut: asyncio.Future = loop.create_future()
                    fut.set_result(
                        {"ok": False, "error": f"bad request: {exc}"})
                    await order.put((fut, False))
                    continue
                if req.get("op") in QUERY_OPS:
                    handling = loop.create_task(
                        self._forward_query_raw(req, line))
                else:
                    handling = loop.create_task(self.handle_request(req))
                await order.put((handling, req.get("op") == "shutdown"))
                if req.get("op") == "shutdown":
                    break
        finally:
            if not wtask.done():
                try:
                    order.put_nowait(None)
                except asyncio.QueueFull:
                    wtask.cancel()
            try:
                await wtask
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            while not order.empty():
                item = order.get_nowait()
                if item is not None:
                    item[0].cancel()
                    try:
                        await item[0]
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
