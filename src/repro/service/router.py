"""The router tier: one front door over N worker processes.

``repro route`` (or ``repro serve --workers N``) runs a
:class:`RouterTier`: a process that owns the public TCP listener and
consistent-hash-places graph instances onto worker processes, each of
which runs a full :class:`~repro.service.worker_proc.WorkerService`
(shards x micro-batchers x update path) in its own interpreter — the
fleet discipline of the paper's MPC model applied to the serving
substrate itself. The router holds no oracle state; it holds *routing*
state:

* **placement** — rendezvous hashing (:mod:`repro.service.placement`)
  maps each instance to a primary worker plus ``replication - 1``
  replicas. Reads fan out round-robin across the replica set (hot
  instances use the whole set); writes always go to the primary.
* **snapshot shipping** — an instance is introduced to its workers by
  ``adopt``: the router publishes one digest-addressed, uncompressed
  ``.npz`` snapshot and every replica memory-maps the same page-cached
  file. A structure-changing update rebuilds **once** on the primary,
  which publishes the new generation's snapshot; the router then ships
  only ``(path, digest, generation)`` to the replicas, whose ``swap``
  is an mmap + atomic shard-tuple swap under live reads — zero
  pipeline work, zero downtime, bit-identical answers per generation.
* **backpressure** — workers report per-instance queue depth
  (``depth`` op, polled on a dedicated telemetry link); once a
  worker's fraction of its queue bound crosses the shed watermark the
  router sheds *before* forwarding, so overload answers come from the
  cheap tier and saturated workers drain instead of queueing deeper.
* **supervision** — a :class:`~repro.service.supervision.Supervisor`
  watches process sentinels and heartbeats, re-dials severed
  connections, respawns crashed workers under a bounded restart
  policy, and gates every rejoin behind catch-up from the router's
  generation ledger. Reads retry transparently on the next live
  replica (they are pure); writes fail over to a promoted replica
  when the acting primary is down. Deterministic fault injection
  lives in :mod:`repro.service.chaos` (``--chaos`` / the ``chaos``
  wire op).

Forwarding is deliberately thin: worker links are pipelined JSON-lines
connections with FIFO correlation (the service writes responses in
request order), and on the hot read path the router forwards the
client's raw request line and relays the worker's raw response line —
one ``json.loads`` for routing, zero re-serialisation.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ServiceError, ValidationError
from ..graph.graph import WeightedGraph
from ..mpc import MPCConfig
from ..mpc.parallel import get_context
from ..oracle import SensitivityOracle, build_oracle
from ..serialize import file_digest
from . import wire
from .batching import QUERY_OPS
from .chaos import ChaosInjector, ChaosPlan
from .metrics import RouterMetrics
from .placement import Placement
from .supervision import Supervisor
from .worker_proc import WorkerSpec, worker_entry

__all__ = ["RouterConfig", "RouterTier", "WorkerLink", "BinaryWorkerLink"]


@dataclass
class RouterConfig:
    """Deployment knobs for one router process and its worker fleet."""

    workers: int = 2                 #: worker processes to spawn
    replication: int = 2             #: replicas per instance (cap: workers)
    shards: int = 2                  #: edge-range shards per instance/worker
    max_batch: int = 512
    batch_window_s: float = 0.002
    queue_depth: int = 4096
    engine: str = "local"
    delta: float = 0.35
    oracle_labels: bool = True
    host: str = "127.0.0.1"          #: front-door bind address
    port: int = 7465                 #: front-door port (0 picks a free one)
    worker_host: str = "127.0.0.1"   #: where workers bind (loopback fleet)
    mmap_dir: Optional[str] = None   #: snapshot spool (default: a tempdir)
    cache_dir: Optional[str] = None  #: per-worker artifact cache root
    query_links: int = 2             #: pipelined query connections per worker
    shed_watermark: float = 0.9      #: depth fraction that trips router shed
    depth_poll_s: float = 0.02       #: telemetry poll interval
    spawn_timeout_s: float = 120.0   #: worker boot handshake budget
    supervise: bool = True           #: run the self-healing supervisor
    heartbeat_s: float = 0.25        #: sentinel + heartbeat cadence
    heartbeat_timeout_s: float = 3.0  #: ping budget before suspicion
    read_retry_deadline_s: float = 2.0  #: budget to retry reads elsewhere
    restart_backoff_s: float = 0.1   #: initial respawn backoff (doubles)
    max_restarts: int = 5            #: respawns per window before eviction
    restart_window_s: float = 60.0   #: sliding restart-budget window
    chaos: Optional[str] = None      #: fault-injection spec (ChaosPlan)


class WorkerLink:
    """One pipelined JSON-lines connection with FIFO correlation.

    The service endpoint writes responses strictly in request order, so
    correlation is a deque of futures: the k-th response line resolves
    the k-th outstanding request. Many requests ride one connection
    concurrently; a lost connection fails every outstanding future with
    a structured :class:`~repro.errors.ServiceError` instead of leaking
    ``ConnectionResetError`` into the router's forwarding paths.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: deque = deque()
        self._dead = False
        self._task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int,
                      timeout_s: float = 10.0) -> "WorkerLink":
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout_s)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceError(f"worker connect {host}:{port} failed: {exc}",
                               kind="disconnected")
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                if self._pending:
                    fut = self._pending.popleft()
                    if not fut.done():
                        fut.set_result(line)
        except (ConnectionError, OSError):
            pass
        finally:
            self._dead = True
            while self._pending:
                fut = self._pending.popleft()
                if not fut.done():
                    fut.set_exception(ServiceError(
                        "worker connection lost with requests in flight",
                        kind="disconnected"))

    async def request_raw(self, line: bytes) -> bytes:
        """Send one already-framed request line, await its response line."""
        if self._dead:
            raise ServiceError("worker link is down", kind="disconnected")
        fut = asyncio.get_running_loop().create_future()
        self._pending.append(fut)       # append + write: one atomic step
        self._writer.write(line)
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            if not fut.done():
                self._pending.remove(fut)
                fut.cancel()
            raise ServiceError(f"worker link write failed: {exc}",
                               kind="disconnected")
        return await fut

    async def request(self, req: Dict,
                      timeout_s: Optional[float] = None) -> Dict:
        """Parsed request/response (control + telemetry paths)."""
        line = wire.dumps_line(req)
        if timeout_s is None:
            raw = await self.request_raw(line)
        else:
            raw = await asyncio.wait_for(self.request_raw(line), timeout_s)
        return json.loads(raw)

    async def close(self) -> None:
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class BinaryWorkerLink:
    """One pipelined *binary* connection with byte-counted correlation.

    The router's zero-parse relay rides these: a run of k point frames
    is answered by exactly 16k response bytes in FIFO order (the worker
    answers every point frame with one fixed-width frame, errors
    included), so correlation is a deque of ``("fixed", nbytes, fut)``
    entries and the read loop never inspects a payload — it only counts
    bytes. Escape round-trips (the re-hello path) enqueue a
    ``("frame", None, fut)`` entry, whose length comes from the 8-byte
    header alone. No JSON parser ever runs on this connection's data
    path.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._pending: deque = deque()
        self._have_work = asyncio.Event()
        self._buf = bytearray()
        self._dead = False
        self.version = 0          #: symbol-table size last negotiated
        self._task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int, names: List[str],
                      timeout_s: float = 10.0) -> "BinaryWorkerLink":
        """Dial + negotiate: the hello dictates ``names`` in id order.

        The hello escape frame is also what flips the worker's
        connection sniffer to binary (its first byte is ``MAGIC``).
        """
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout_s)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceError(f"worker connect {host}:{port} failed: {exc}",
                               kind="disconnected")
        try:
            writer.write(wire.encode_escape(
                {"op": "hello", "wire": wire.WIRE_VERSION,
                 "instances": names}))
            await writer.drain()
            head = await asyncio.wait_for(
                reader.readexactly(wire.HEADER_LEN), timeout_s)
            length = wire.frame_length(head)
            frame = head + await asyncio.wait_for(
                reader.readexactly(length - wire.HEADER_LEN), timeout_s)
            resp = wire.decode_escape(frame)
        except (OSError, ConnectionError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, wire.WireError) as exc:
            writer.close()
            raise ServiceError(
                f"binary hello to {host}:{port} failed: {exc}",
                kind="disconnected")
        if not resp.get("ok"):
            writer.close()
            raise ServiceError(
                f"worker {host}:{port} rejected hello: {resp.get('error')}",
                kind="protocol")
        link = cls(reader, writer)
        link.version = len(names)
        return link

    async def _fill(self) -> None:
        data = await self._reader.read(1 << 16)
        if not data:
            raise ConnectionError("worker closed the binary link")
        self._buf += data

    async def _read_loop(self) -> None:
        try:
            while True:
                if not self._pending:
                    self._have_work.clear()
                    await self._have_work.wait()
                kind, nbytes, fut = self._pending[0]
                if kind == "frame":
                    while (need := wire.frame_length(self._buf)) is None:
                        await self._fill()
                else:
                    need = nbytes
                while len(self._buf) < need:
                    await self._fill()
                chunk = bytes(self._buf[:need])
                del self._buf[:need]
                self._pending.popleft()
                if not fut.done():
                    fut.set_result(chunk)
        except (ConnectionError, OSError, asyncio.IncompleteReadError,
                wire.WireError):
            pass
        finally:
            self._dead = True
            while self._pending:
                entry = self._pending.popleft()
                if not entry[2].done():
                    entry[2].set_exception(ServiceError(
                        "worker connection lost with requests in flight",
                        kind="disconnected"))

    async def _submit(self, payload: bytes, entry) -> bytes:
        if self._dead:
            raise ServiceError("worker link is down", kind="disconnected")
        self._pending.append(entry)
        self._have_work.set()
        self._writer.write(payload)
        try:
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            raise ServiceError(f"worker link write failed: {exc}",
                               kind="disconnected")
        return await entry[2]

    async def request_run(self, payload: bytes, nframes: int) -> bytes:
        """Relay a run of point frames; await its 16-byte-per-frame
        answer block. Pure byte splicing on both directions."""
        fut = asyncio.get_running_loop().create_future()
        return await self._submit(
            payload, ("fixed", nframes * wire.POINT_LEN, fut))

    async def request_escape(self, req: Dict,
                             timeout_s: Optional[float] = None) -> Dict:
        """One JSON control op over the binary link (re-hello)."""
        fut = asyncio.get_running_loop().create_future()
        coro = self._submit(wire.encode_escape(req), ("frame", None, fut))
        raw = (await coro if timeout_s is None
               else await asyncio.wait_for(coro, timeout_s))
        return wire.decode_escape(raw)

    async def close(self) -> None:
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


@dataclass
class _Worker:
    """Router-side handle to one spawned worker process."""

    worker_id: int
    proc: object
    port: int
    links: List[WorkerLink]          #: pipelined query links (round-robin)
    control: WorkerLink              #: adopt/swap/update/shutdown
    telemetry: WorkerLink            #: depth polls + metrics scrapes
    bin_links: List[BinaryWorkerLink] = field(default_factory=list)
    depth: Dict = field(default_factory=dict)
    rr: int = 0
    bin_rr: int = 0
    wire_version: int = 0            #: symbols dictated to this process
    up: bool = True                  #: in rotation (supervisor-managed)
    stale: set = field(default_factory=set)  #: instances pending resync
    chaos_delay_s: float = 0.0       #: injected read latency (chaos)
    poller: Optional[asyncio.Task] = None

    def all_links(self):
        return (*self.links, *self.bin_links, self.control, self.telemetry)

    def live_link(self) -> Optional[WorkerLink]:
        """Next non-dead query link, or ``None`` when all are down."""
        for _ in range(len(self.links)):
            self.rr += 1
            link = self.links[self.rr % len(self.links)]
            if not link._dead:
                return link
        return None

    def live_bin_link(self) -> Optional[BinaryWorkerLink]:
        """Next non-dead binary relay link, or ``None``."""
        for _ in range(len(self.bin_links)):
            self.bin_rr += 1
            link = self.bin_links[self.bin_rr % len(self.bin_links)]
            if not link._dead:
                return link
        return None

    def routable(self, instance: str) -> bool:
        """May this worker serve reads of ``instance`` right now?"""
        return (self.up and instance not in self.stale
                and any(not link._dead for link in self.links))


@dataclass
class _Placed:
    """One routed instance: its replica set and routing facts."""

    name: str
    m: int
    n: int
    m_tree: int
    replicas: List[int]              #: worker ids, primary first
    generation: int = 0
    rr: int = 0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class RouterTier:
    """Front door + placement + snapshot shipping over worker processes."""

    PIPELINE_LIMIT = 1024

    def __init__(self, config: Optional[RouterConfig] = None):
        self.config = config or RouterConfig()
        if self.config.workers < 1:
            raise ValidationError("router needs at least one worker")
        self.placement = Placement()
        self.workers: Dict[int, _Worker] = {}
        self.instances: Dict[str, _Placed] = {}
        self.metrics = RouterMetrics()
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        self.supervisor = Supervisor(self)
        #: router-owned symbol registry; its id order is dictated to
        #: every worker so relayed binary frames never rewrite iids
        self.wire_symbols = wire.WireSymbols()
        self.wire = {"json": wire.WireMetrics(),
                     "binary": wire.WireMetrics()}
        self._injectors: List[ChaosInjector] = []
        self._spool = self.config.mmap_dir
        self._own_spool: Optional[tempfile.TemporaryDirectory] = None
        self._fwd_count = 0
        self._stopped = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self, serve_tcp: bool = False) -> None:
        """Spawn + handshake the fleet, then (optionally) open the door."""
        if self._spool is None:
            self._own_spool = tempfile.TemporaryDirectory(
                prefix="repro-router-")
            self._spool = self._own_spool.name
        os.makedirs(self._spool, exist_ok=True)
        boots = [(wid, *self._launch_worker(wid))
                 for wid in range(self.config.workers)]
        deadline = time.perf_counter() + self.config.spawn_timeout_s
        for wid, proc, conn in boots:
            try:
                port = await self._await_ready(wid, proc, conn, deadline)
                worker = await self._connect_worker(wid, proc, port)
            except ServiceError:
                await self._kill_boots(boots)
                raise
            self.workers[wid] = worker
            self.placement.add_worker(wid)
        self.started_at = time.perf_counter()
        for w in self.workers.values():
            self._start_poller(w)
        self.supervisor.start()
        if self.config.chaos:
            self.arm_chaos(ChaosPlan.parse(self.config.chaos))
        if serve_tcp:
            self._server = await asyncio.start_server(
                self._handle_connection, self.config.host, self.config.port)

    def _launch_worker(self, wid: int):
        """Fork one worker process; returns its handle + boot pipe."""
        ctx = get_context()
        parent_conn, child_conn = ctx.Pipe()
        spec = WorkerSpec(
            worker_id=wid, host=self.config.worker_host,
            shards=self.config.shards, max_batch=self.config.max_batch,
            batch_window_s=self.config.batch_window_s,
            queue_depth=self.config.queue_depth,
            engine=self.config.engine, delta=self.config.delta,
            oracle_labels=self.config.oracle_labels,
            mmap_dir=os.path.join(self._spool, f"worker{wid}"),
            cache_dir=(os.path.join(self.config.cache_dir, f"worker{wid}")
                       if self.config.cache_dir else None),
        )
        proc = ctx.Process(target=worker_entry,
                           args=(child_conn, spec), daemon=True)
        proc.start()
        child_conn.close()
        return proc, parent_conn

    async def _await_ready(self, wid: int, proc, conn,
                           deadline: float) -> int:
        """Wait for one worker's ``("ready", wid, port)`` handshake."""
        loop = asyncio.get_running_loop()
        try:
            budget = max(0.1, deadline - time.perf_counter())
            msg = await asyncio.wait_for(
                loop.run_in_executor(None, conn.recv), budget)
        except (asyncio.TimeoutError, EOFError, OSError):
            raise ServiceError(
                f"worker {wid} failed its boot handshake within "
                f"{self.config.spawn_timeout_s:.0f}s",
                kind="disconnected")
        finally:
            conn.close()
        assert msg[0] == "ready" and msg[1] == wid
        return int(msg[2])

    async def _connect_worker(self, wid: int, proc, port: int) -> _Worker:
        host = self.config.worker_host
        links = [await WorkerLink.connect(host, port)
                 for _ in range(max(1, self.config.query_links))]
        control = await WorkerLink.connect(host, port)
        telemetry = await WorkerLink.connect(host, port)
        # the binary hello dictates the router's global symbol order to
        # this (possibly fresh) process, so relayed frame iids mean the
        # same instance on both sides of the splice
        names = self.wire_symbols.names()
        bin_links = [await BinaryWorkerLink.connect(host, port, names)
                     for _ in range(max(1, self.config.query_links))]
        return _Worker(worker_id=wid, proc=proc, port=port, links=links,
                       control=control, telemetry=telemetry,
                       bin_links=bin_links, wire_version=len(names))

    async def _respawn_worker(self, w: _Worker) -> None:
        """Boot a fresh process for a dead worker, reusing its identity.

        The new process keeps the worker id, spool directory, and
        artifact cache of the old one; its serving state is rebuilt by
        the supervisor's ledger catch-up before it re-enters rotation.
        """
        proc, conn = self._launch_worker(w.worker_id)
        deadline = time.perf_counter() + self.config.spawn_timeout_s
        try:
            port = await self._await_ready(w.worker_id, proc, conn, deadline)
            fresh = await self._connect_worker(w.worker_id, proc, port)
        except ServiceError:
            if proc.is_alive():
                proc.terminate()
            raise
        w.proc, w.port = fresh.proc, fresh.port
        w.links, w.control = fresh.links, fresh.control
        w.telemetry = fresh.telemetry
        w.bin_links = fresh.bin_links
        w.wire_version = fresh.wire_version
        w.rr = 0
        w.bin_rr = 0
        w.depth = {}
        w.chaos_delay_s = 0.0

    async def _kill_boots(self, boots) -> None:
        for _wid, proc, _conn in boots:
            if proc.is_alive():
                proc.terminate()

    def arm_chaos(self, plan: ChaosPlan) -> ChaosInjector:
        """Start executing a fault-injection plan against the fleet."""
        injector = ChaosInjector(plan)
        injector.start(self)
        self._injectors.append(injector)
        return injector

    @property
    def tcp_address(self) -> Optional[tuple]:
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        await self._shutdown.wait()

    async def stop(self) -> None:
        """Shut the whole tree down: door, pollers, workers, spool."""
        if self._stopped:
            return
        self._stopped = True
        for injector in self._injectors:
            await injector.stop()
        await self.supervisor.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        pollers = [w.poller for w in self.workers.values()
                   if w.poller is not None]
        for t in pollers:
            t.cancel()
        if pollers:
            await asyncio.gather(*pollers, return_exceptions=True)
        for w in self.workers.values():
            w.poller = None
        loop = asyncio.get_running_loop()
        for w in self.workers.values():
            try:
                await w.control.request({"op": "shutdown"}, timeout_s=10.0)
            except (ServiceError, asyncio.TimeoutError):
                pass
            for link in w.all_links():
                await link.close()
        for w in self.workers.values():
            await loop.run_in_executor(None, w.proc.join, 10.0)
            if w.proc.is_alive():  # pragma: no cover - stuck worker
                w.proc.terminate()
                await loop.run_in_executor(None, w.proc.join, 5.0)
        if self._own_spool is not None:
            self._own_spool.cleanup()
            self._own_spool = None
        self._shutdown.set()

    # -- instance placement ----------------------------------------------------

    async def add_instance(self, name: str, graph: WeightedGraph,
                           oracle: Optional[SensitivityOracle] = None
                           ) -> Dict:
        """Build (or adopt) generation 0 and ship it to the replica set.

        The oracle is built **once** (here, unless one is supplied),
        published as a digest-addressed snapshot, and adopted by every
        replica via mmap — N workers, one build, one page-cached copy.
        """
        if name in self.instances:
            raise ValidationError(f"instance {name!r} already registered")
        if not self.workers:
            raise ValidationError("router not started")
        cfg = self.config
        if oracle is None:
            config = (MPCConfig(delta=cfg.delta)
                      if cfg.engine == "distributed" else None)
            oracle = await asyncio.get_running_loop().run_in_executor(
                None, lambda: build_oracle(
                    graph, engine=cfg.engine, config=config,
                    oracle_labels=cfg.oracle_labels))
        tmp = os.path.join(self._spool, f".{name}-seed.tmp.npz")
        oracle.save(tmp, compressed=False)
        digest = file_digest(tmp)
        path = os.path.join(self._spool, f"{name}-{digest[:16]}.npz")
        os.replace(tmp, path)
        replicas = self.placement.replicas(name, cfg.replication)
        adopt = {"op": "adopt", "instance": name, "path": path,
                 "digest": digest, "generation": 0}
        targets, offline = [], []
        for wid in replicas:
            w = self.workers.get(wid)
            if w is None:
                continue
            (targets if w.up and not w.control._dead else offline).append(w)
        if not targets:
            raise ServiceError(
                f"no live replica available to adopt {name!r}",
                kind="disconnected")
        results = await asyncio.gather(*(
            w.control.request(adopt) for w in targets))
        for w, resp in zip(targets, results):
            if not resp.get("ok"):
                raise ServiceError(
                    f"worker {w.worker_id} refused to adopt {name!r}: "
                    f"{resp.get('error')}")
        self.wire_symbols.intern(name)
        await self._sync_all_symbols()  # before any frame can carry the iid
        self.instances[name] = _Placed(
            name=name, m=graph.m, n=graph.n, m_tree=graph.m_tree,
            replicas=replicas)
        self.supervisor.ledger.record_publish(name, path, digest, 0)
        for w in offline:
            # a down replica picks the instance up from the ledger when
            # its recovery drains the stale set
            w.stale.add(name)
        return {"instance": name, "replicas": replicas,
                "digest": digest, "path": path}

    # -- wire-symbol dictation -------------------------------------------------

    async def _sync_symbols(self, w: _Worker) -> None:
        """Push the router's symbol table to one worker (idempotent).

        The hello rides the JSON control link — it works even while the
        binary links are being healed — and lists every name in global
        id order, so the worker's append-only table ends positionally
        identical to the router's.
        """
        names = self.wire_symbols.names()
        if w.wire_version >= len(names) or w.control._dead:
            return
        resp = await w.control.request({"op": "hello", "instances": names})
        if resp.get("ok"):
            w.wire_version = len(names)

    async def _sync_all_symbols(self) -> None:
        for w in self.workers.values():
            try:
                await self._sync_symbols(w)
            except ServiceError:
                # a worker that misses the sync re-hellos at heal or
                # respawn time, before it can serve binary relays again
                self.supervisor.notify_suspect(w)

    async def hello(self, req: Dict) -> Dict:
        """Front-door negotiation: intern, dictate to workers, reply.

        Workers are synced *before* the reply so a client can never
        hold an iid the fleet does not understand yet.
        """
        names = req.get("instances")
        if names is None:
            names = sorted(self.instances)
        try:
            symbols = self.wire_symbols.intern_all(str(n) for n in names)
        except wire.WireError as exc:
            return {"ok": False, "error": str(exc)}
        await self._sync_all_symbols()
        return {"ok": True,
                "result": {"wire": wire.WIRE_VERSION, "symbols": symbols}}

    # -- read path -------------------------------------------------------------

    def _placed(self, name: Optional[str]) -> _Placed:
        if name is None and len(self.instances) == 1:
            return next(iter(self.instances.values()))
        if name not in self.instances:
            raise ValidationError(
                f"unknown instance {name!r} "
                f"(have: {sorted(self.instances)})")
        return self.instances[name]

    def _pick_worker(self, placed: _Placed) -> Optional[_Worker]:
        """Round-robin over the replica set, skipping saturated, dead,
        and stale workers.

        A worker whose query links are down, that the supervisor took
        out of rotation, or that is stale for this instance is never a
        candidate — its last depth report is meaningless. Returns
        ``None`` when no replica can take the read.
        """
        n = len(placed.replicas)
        for _ in range(n):
            placed.rr += 1
            wid = placed.replicas[placed.rr % n]
            w = self.workers.get(wid)
            if w is None or not w.routable(placed.name):
                continue
            info = w.depth.get(placed.name)
            if info is not None and \
                    info.get("fraction", 0.0) >= self.config.shed_watermark:
                continue
            if wid != placed.replicas[0]:
                self.metrics.replica_hits += 1
            return w
        return None

    def _any_routable(self, placed: _Placed) -> bool:
        return any(
            (w := self.workers.get(wid)) is not None
            and w.routable(placed.name)
            for wid in placed.replicas)

    async def _forward_query_raw(self, req: Dict, line: bytes) -> bytes:
        """The hot path: route by instance, relay raw lines.

        Reads are pure, so a mid-request disconnect is safe to retry:
        the query is re-sent to the next live replica until it answers
        or ``read_retry_deadline_s`` runs out. The deadline also covers
        the no-replica window of a replication-1 instance whose only
        worker is mid-respawn. Saturation still sheds immediately —
        retrying onto an overloaded fleet would only queue deeper.
        """
        try:
            placed = self._placed(req.get("instance"))
        except ValidationError as exc:
            return self._frame({"ok": False, "error": str(exc)}, req)
        deadline = time.perf_counter() + self.config.read_retry_deadline_s
        while True:
            w = self._pick_worker(placed)
            if w is None:
                if self._any_routable(placed):
                    # live replicas exist but all are past the shed
                    # watermark: backpressure, not failure
                    self.metrics.shed_router += 1
                    return self._frame(
                        {"ok": False, "shed": True, "where": "router",
                         "error": f"all {len(placed.replicas)} replica(s) "
                                  f"of {placed.name!r} are past the shed "
                                  f"watermark"},
                        req)
                if time.perf_counter() >= deadline:
                    return self._frame(
                        {"ok": False,
                         "error": f"no live replica of {placed.name!r} "
                                  f"within the retry deadline",
                         "error_kind": "worker-disconnected"}, req)
                await asyncio.sleep(0.05)  # a replica is recovering
                continue
            if w.chaos_delay_s > 0:
                await asyncio.sleep(w.chaos_delay_s)
            link = w.live_link()
            if link is None:
                self.supervisor.notify_suspect(w)
                continue
            t0 = time.perf_counter()
            try:
                raw = await link.request_raw(line)
            except ServiceError:
                self.metrics.worker_errors += 1
                self.supervisor.metrics.read_retries += 1
                self.supervisor.notify_suspect(w)
                if time.perf_counter() >= deadline:
                    return self._frame(
                        {"ok": False,
                         "error": f"replicas of {placed.name!r} kept "
                                  f"disconnecting within the retry "
                                  f"deadline",
                         "error_kind": "worker-disconnected"}, req)
                continue
            self.metrics.forwarded += 1
            self._fwd_count += 1
            if self._fwd_count % 16 == 0:  # stride-sampled router-side rtt
                self.metrics.latency.extend([time.perf_counter() - t0])
            return raw

    @staticmethod
    def _frame(resp: Dict, req: Dict) -> bytes:
        if "id" in req:
            resp["id"] = req["id"]
        return wire.dumps_line(resp)

    # -- write path ------------------------------------------------------------

    def _acting_primary(self, placed: _Placed) -> Optional[_Worker]:
        """The first live, current replica — canonical unless it's down.

        Replica order is the rendezvous ranking, so promotion is
        deterministic: every write lands on the same surviving replica
        until the canonical primary catches up and takes over again.
        """
        for wid in placed.replicas:
            w = self.workers.get(wid)
            if (w is not None and w.up and not w.control._dead
                    and placed.name not in w.stale):
                return w
        return None

    async def _primary_request(self, placed: _Placed, fwd: Dict):
        """Send a write to the acting primary, failing over on death.

        Retrying on the next replica is safe: a primary that died
        mid-request never had its result shipped to replicas or
        recorded in the ledger, so readers never observed it — the
        promoted replica applies the op exactly once onto the last
        published generation, and the dead worker's private state is
        discarded at catch-up.
        """
        for _ in range(max(1, len(placed.replicas))):
            primary = self._acting_primary(placed)
            if primary is None:
                break
            try:
                resp = await primary.control.request(fwd)
            except ServiceError:
                self.metrics.worker_errors += 1
                self.supervisor.notify_suspect(primary)
                continue
            if primary.worker_id != placed.replicas[0]:
                # served by a promoted replica, not the canonical primary
                self.supervisor.metrics.failovers += 1
            return primary, resp
        return None, {"ok": False,
                      "error": f"no live replica of {placed.name!r} can "
                               f"take writes",
                      "error_kind": "worker-disconnected"}

    def _current_replicas(self, placed: _Placed,
                          exclude: _Worker) -> List[_Worker]:
        """Fan-out targets: every *other* live, current replica.

        Down or already-stale replicas are skipped — the ledger records
        what they are missing and catch-up/resync replays it. A replica
        that is still in rotation but whose control link is dead cannot
        receive this mutation at all: it is marked stale *here*, before
        the mutation lands anywhere, so it can never serve reads of a
        state it silently missed.
        """
        out = []
        for wid in placed.replicas:
            w = self.workers.get(wid)
            if w is None or w is exclude:
                continue
            if not w.up or placed.name in w.stale:
                continue
            if w.control._dead:
                self._mark_stale(w, placed)
                continue
            out.append(w)
        return out

    def _mark_stale(self, w: _Worker, placed: _Placed) -> None:
        """A replica missed a mutation: freeze it out of this
        instance's reads until the supervisor re-aligns it from the
        ledger (snapshot re-adopt + patch-log replay)."""
        w.stale.add(placed.name)
        self.supervisor.schedule_resync(w, placed.name)

    async def update(self, req: Dict) -> Dict:
        """Forward a weight update to the acting primary, ship the
        result, and record it in the generation ledger.

        * ``rebuilt`` — the primary already published the new
          generation's digest-addressed snapshot; ship ``swap`` to the
          other live replicas and wait for every one to adopt it.
        * ``patched`` — fan the same (provably threshold-preserving)
          update out to the live replicas; each applies the two-cell
          patch. A replica that fails its ack is marked stale and
          resynced before it serves this instance again.
        * ``rejected`` — nothing to ship.
        """
        try:
            placed = self._placed(req.get("instance"))
        except ValidationError as exc:
            return {"ok": False, "error": str(exc)}
        fwd = {"op": "update", "instance": placed.name,
               "edge": req.get("edge", -1),
               "weight": req.get("weight", float("nan"))}
        async with placed.lock:  # one update in flight per instance
            self.metrics.updates += 1
            primary, resp = await self._primary_request(placed, fwd)
            if primary is None:
                return resp
            others = self._current_replicas(placed, exclude=primary)
            if resp.get("action") == "rebuilt":
                self.supervisor.ledger.record_publish(
                    placed.name, resp["snapshot_path"],
                    resp["snapshot_digest"], int(resp["generation"]))
                if others:
                    await self._ship_swap(placed, resp, others)
                placed.generation = int(resp["generation"])
            elif resp.get("action") == "patched":
                self.supervisor.ledger.record_patch(
                    placed.name, fwd["edge"], fwd["weight"])
                if others:
                    acks = await asyncio.gather(
                        *(w.control.request(fwd) for w in others),
                        return_exceptions=True)
                    self.metrics.patches_fanned += len(others)
                    for w, ack in zip(others, acks):
                        if not (isinstance(ack, dict)
                                and ack.get("action") == "patched"):
                            self.metrics.worker_errors += 1
                            self._mark_stale(w, placed)
        return resp

    async def _ship_swap(self, placed: _Placed, resp: Dict,
                         others: List[_Worker]) -> None:
        """Ship a primary rebuild's snapshot to the other replicas.

        The primary already published the digest-addressed file into
        the shared spool; replicas get ``(path, digest, generation)``
        and adopt by mmap — the rebuild itself never repeats.
        """
        swap = {"op": "swap", "instance": placed.name,
                "path": resp["snapshot_path"],
                "digest": resp["snapshot_digest"],
                "generation": resp["generation"]}
        t0 = time.perf_counter()
        acks = await asyncio.gather(
            *(w.control.request(swap) for w in others),
            return_exceptions=True)
        self.metrics.swap_latency.extend([time.perf_counter() - t0])
        self.metrics.swaps_shipped += len(others)
        resp["shipped_to"] = []
        for w, ack in zip(others, acks):
            ok = isinstance(ack, dict) and ack.get("ok")
            if not ok:
                self.metrics.worker_errors += 1
                self._mark_stale(w, placed)
            resp["shipped_to"].append(
                {"worker": w.worker_id, "ok": bool(ok)})

    async def update_batch(self, req: Dict) -> Dict:
        """Forward a structural batch to the primary, ship the swap.

        The streaming write path is primary-only, exactly like point
        updates: the primary's ingestor coalesces and rebuilds once
        (scoped when the batch is non-tree-only), publishes the new
        generation's snapshot, and the router ships ``(path, digest,
        generation)`` to the replicas — whose ``swap`` re-plans shards
        when the edge count changed. Routing facts (``m``, ``m_tree``,
        generation) refresh from the batch report so new edge ids
        route immediately.
        """
        try:
            placed = self._placed(req.get("instance"))
        except ValidationError as exc:
            return {"ok": False, "error": str(exc)}
        fwd = {"op": "update_batch", "instance": placed.name,
               "ops": req.get("ops") or []}
        async with placed.lock:  # one structural change in flight
            self.metrics.updates += 1
            primary, resp = await self._primary_request(placed, fwd)
            if primary is None:
                return resp
            if resp.get("action") == "rebuilt":
                self.supervisor.ledger.record_publish(
                    placed.name, resp["snapshot_path"],
                    resp["snapshot_digest"], int(resp["generation"]))
                others = self._current_replicas(placed, exclude=primary)
                if others:
                    await self._ship_swap(placed, resp, others)
                placed.generation = int(resp["generation"])
                placed.m = int(resp.get("m", placed.m))
                placed.m_tree = int(resp.get("m_tree", placed.m_tree))
        return resp

    # -- introspection ---------------------------------------------------------

    def describe_instances(self) -> Dict:
        return {
            name: {
                "n": p.n, "m": p.m, "m_tree": p.m_tree,
                "generation": p.generation,
                "replicas": list(p.replicas),
                "primary": p.replicas[0],
            }
            for name, p in self.instances.items()
        }

    async def router_metrics(self) -> Dict:
        """Router counters + a scrape of every worker's own metrics."""
        uptime = (time.perf_counter() - self.started_at
                  if self.started_at is not None else 0.0)
        per_worker = {}
        scrapes = await asyncio.gather(
            *(w.telemetry.request({"op": "metrics"})
              for w in self.workers.values()),
            return_exceptions=True)
        total_q = total_shed = 0
        for w, scrape in zip(self.workers.values(), scrapes):
            if isinstance(scrape, dict) and scrape.get("ok"):
                m = scrape["result"]
                total_q += m["queries"]
                total_shed += m["shed"]
                per_worker[str(w.worker_id)] = m
            else:
                per_worker[str(w.worker_id)] = {"error": str(scrape)}
        return {
            "uptime_s": round(uptime, 3),
            "queries": total_q,
            "qps": round(total_q / uptime, 1) if uptime else 0.0,
            "shed_workers": total_shed,
            "router": self.metrics.snapshot(),
            "wire": {proto: wm.snapshot()
                     for proto, wm in self.wire.items()},
            "supervisor": self.supervisor.metrics.snapshot(),
            "ledger": self.supervisor.ledger.snapshot(),
            "workers": per_worker,
        }

    # -- backpressure ----------------------------------------------------------

    def _start_poller(self, w: _Worker) -> None:
        if w.poller is not None and not w.poller.done():
            return
        w.poller = asyncio.get_running_loop().create_task(
            self._poll_depth(w))

    def _stop_poller(self, w: _Worker) -> None:
        if w.poller is not None:
            w.poller.cancel()
            w.poller = None

    async def _poll_depth(self, w: _Worker) -> None:
        """Telemetry loop: keep ``w.depth`` fresh for the shed check.

        A failed poll clears the last report — routing on a dead
        worker's stale depth would keep feeding it traffic. When the
        telemetry link itself is down the loop ends; the supervisor
        restarts it after healing or respawning the worker.
        """
        try:
            while True:
                try:
                    resp = await w.telemetry.request(
                        {"op": "depth"}, timeout_s=5.0)
                    if resp.get("ok"):
                        w.depth = resp["result"]
                        self.metrics.depth_polls += 1
                except (ServiceError, asyncio.TimeoutError):
                    self.metrics.worker_errors += 1
                    w.depth = {}
                    if w.telemetry._dead:
                        return
                    await asyncio.sleep(
                        max(0.2, self.config.depth_poll_s * 5))
                await asyncio.sleep(self.config.depth_poll_s)
        except asyncio.CancelledError:
            raise

    # -- dispatch --------------------------------------------------------------

    async def handle_request(self, req: Dict) -> Dict:
        """Parsed dispatch (in-process clients, tests, benchmarks)."""
        op = req.get("op")
        if op in QUERY_OPS:
            raw = await self._forward_query_raw(
                req, (json.dumps(req) + "\n").encode())
            return json.loads(raw)
        if op == "update":
            resp = await self.update(req)
        elif op == "update_batch":
            resp = await self.update_batch(req)
        elif op == "metrics":
            resp = {"ok": True, "result": await self.router_metrics()}
        elif op == "depth":
            resp = {"ok": True,
                    "result": {str(w.worker_id): w.depth
                               for w in self.workers.values()}}
        elif op == "instances":
            resp = {"ok": True, "result": self.describe_instances()}
        elif op == "ping":
            resp = {"ok": True, "result": "pong"}
        elif op == "hello":
            resp = await self.hello(req)
        elif op == "chaos":
            try:
                plan = ChaosPlan.parse(str(req.get("spec") or ""))
            except ValidationError as exc:
                resp = {"ok": False, "error": str(exc)}
            else:
                self.arm_chaos(plan)
                resp = {"ok": True, "result": {"events": len(plan)}}
        elif op == "shutdown":
            resp = {"ok": True, "result": "bye"}
        else:
            resp = {"ok": False, "error": f"unknown op {op!r}"}
        if "id" in req:
            resp["id"] = req["id"]
        return resp

    # -- TCP front door --------------------------------------------------------

    #: bytes pulled per read on a binary front-door connection
    READ_SIZE = 1 << 16

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Front door: first byte picks JSON-lines or binary relay."""
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._conn_writers.add(writer)
        try:
            try:
                first = await reader.readexactly(1)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            if first[0] == wire.MAGIC:
                self.wire["binary"].connections += 1
                await self._serve_binary_front(reader, writer, first)
            else:
                self.wire["json"].connections += 1
                await self._serve_jsonl_front(reader, writer, first)
        finally:
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_jsonl_front(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter,
                                 first: bytes) -> None:
        """Pipelined, in-order front door (the service's discipline).

        Query ops take the raw relay path — the original request line is
        forwarded and the worker's response line is written back without
        re-serialisation; everything else goes through parsed dispatch.
        """
        wm = self.wire["json"]
        order: asyncio.Queue = asyncio.Queue(maxsize=self.PIPELINE_LIMIT)

        async def write_in_order() -> None:
            while True:
                item = await order.get()
                if item is None:
                    return
                fut, is_shutdown = item
                try:
                    resp = await fut
                except Exception as exc:  # noqa: BLE001
                    resp = {"ok": False,
                            "error": f"{type(exc).__name__}: {exc}"}
                if isinstance(resp, (bytes, bytearray)):
                    payload = resp
                else:
                    payload = wire.dumps_line(resp)
                    wm.json_encodes += 1
                wm.frames_out += 1
                wm.bytes_out += len(payload)
                writer.write(payload)
                await writer.drain()
                if is_shutdown:
                    self._shutdown.set()
                    return

        loop = asyncio.get_running_loop()
        wtask = loop.create_task(write_in_order())
        try:
            while not wtask.done():
                try:
                    line = first + await reader.readline()
                    first = b""
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                wm.frames_in += 1
                wm.bytes_in += len(line)
                try:
                    req = json.loads(line)
                    wm.json_decodes += 1
                    if not isinstance(req, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    fut: asyncio.Future = loop.create_future()
                    fut.set_result(
                        {"ok": False, "error": f"bad request: {exc}"})
                    await order.put((fut, False))
                    continue
                if req.get("op") in QUERY_OPS:
                    handling = loop.create_task(
                        self._forward_query_raw(req, line))
                else:
                    handling = loop.create_task(self.handle_request(req))
                await order.put((handling, req.get("op") == "shutdown"))
                if req.get("op") == "shutdown":
                    break
        finally:
            if not wtask.done():
                try:
                    order.put_nowait(None)
                except asyncio.QueueFull:
                    wtask.cancel()
            try:
                await wtask
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            while not order.empty():
                item = order.get_nowait()
                if item is not None:
                    item[0].cancel()
                    try:
                        await item[0]
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass

    # -- binary front door: zero-parse relay -----------------------------------

    async def _serve_binary_front(self, reader: asyncio.StreamReader,
                                  writer: asyncio.StreamWriter,
                                  first: bytes) -> None:
        """Relay binary frames with **zero parse** on the read path.

        A run of point frames is split on instance-id boundaries — the
        iid sits at a fixed header offset, lifted by one vectorised
        column view, never a JSON parser — and each segment is spliced
        onto a replica's binary link as raw bytes. Shed, retry and
        failover decisions use the peeked header columns alone;
        synthesized status frames answer what cannot be forwarded.
        Control ops arrive as escape frames and take the parsed
        dispatch, exactly like the JSON door.
        """
        wm = self.wire["binary"]
        loop = asyncio.get_running_loop()
        order: asyncio.Queue = asyncio.Queue(maxsize=self.PIPELINE_LIMIT)

        async def write_in_order() -> None:
            while True:
                item = await order.get()
                if item is None:
                    return
                fut, is_shutdown = item
                try:
                    payload = await fut
                except Exception as exc:  # noqa: BLE001
                    wm.json_encodes += 1
                    payload = wire.encode_escape(
                        {"ok": False,
                         "error": f"{type(exc).__name__}: {exc}"})
                wm.bytes_out += len(payload)
                writer.write(payload)
                await writer.drain()
                if is_shutdown:
                    self._shutdown.set()
                    return

        wtask = loop.create_task(write_in_order())
        buf = bytearray(first)
        closing = False
        try:
            while not wtask.done() and not closing:
                try:
                    data = await reader.read(self.READ_SIZE)
                except (ConnectionError, OSError):
                    break
                if not data:
                    break
                buf += data
                while buf and not closing:
                    run = wire.point_run_length(buf)
                    if run:
                        payload = bytes(buf[:run * wire.POINT_LEN])
                        del buf[:run * wire.POINT_LEN]
                        wm.frames_in += run
                        wm.bytes_in += len(payload)
                        await order.put(
                            (loop.create_task(
                                self._relay_point_run(payload, wm)), False))
                        continue
                    length = wire.frame_length(buf)
                    if length is None or len(buf) < length:
                        break
                    frame = bytes(buf[:length])
                    del buf[:length]
                    wm.frames_in += 1
                    wm.bytes_in += length
                    if frame[1] == wire.ESCAPE:
                        wm.json_decodes += 1
                        req = wire.decode_escape(frame)
                        is_shutdown = req.get("op") == "shutdown"
                        await order.put(
                            (loop.create_task(
                                self._answer_escape(req, wm)), is_shutdown))
                        if is_shutdown:
                            closing = True
                    else:
                        # bulk frames are a worker-door format; the
                        # router relays point runs and control only
                        raise wire.WireError(
                            f"frame type 0x{frame[1]:02x} is not "
                            f"routable")
        except wire.WireError as exc:
            wm.json_encodes += 1
            fut: asyncio.Future = loop.create_future()
            fut.set_result(wire.encode_escape(
                {"ok": False, "error": f"wire protocol error: {exc}",
                 "error_kind": "protocol"}))
            try:
                order.put_nowait((fut, False))
            except asyncio.QueueFull:  # pragma: no cover - dead peer
                pass
        finally:
            if not wtask.done():
                try:
                    order.put_nowait(None)
                except asyncio.QueueFull:
                    wtask.cancel()
            try:
                await wtask
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            while not order.empty():
                item = order.get_nowait()
                if item is not None:
                    item[0].cancel()
                    try:
                        await item[0]
                    except (asyncio.CancelledError, Exception):  # noqa: BLE001
                        pass

    async def _answer_escape(self, req: Dict, wm) -> bytes:
        """One control op off the binary door, parsed dispatch."""
        resp = await self.handle_request(req)
        wm.json_encodes += 1
        wm.frames_out += 1
        return wire.encode_escape(resp)

    @staticmethod
    def _synth_status(count: int, status: int, value: float = 0.0) -> bytes:
        """``count`` synthesized point-response frames (router-answered)."""
        resp = np.zeros(count, dtype=wire.RESP_DTYPE)
        resp["magic"] = wire.MAGIC
        resp["type"] = wire.RESP_BASE | status
        resp["value"] = value
        return resp.tobytes()

    async def _relay_point_run(self, payload: bytes, wm) -> bytes:
        """Answer one decoded run: split on iid boundaries, splice.

        Segments relay concurrently (each retries independently); the
        answer blocks concatenate back in request order, preserving the
        connection's FIFO contract.
        """
        iids = np.frombuffer(payload, dtype=wire.POINT_DTYPE)["iid"]
        cuts = [0, *(np.flatnonzero(np.diff(iids)) + 1), len(iids)]
        loop = asyncio.get_running_loop()
        parts = [
            loop.create_task(self._relay_segment(
                int(iids[lo]),
                payload[lo * wire.POINT_LEN:hi * wire.POINT_LEN],
                hi - lo))
            for lo, hi in zip(cuts, cuts[1:])
        ]
        out = b"".join([await p for p in parts])
        wm.frames_out += len(iids)
        return out

    async def _relay_segment(self, iid: int, seg: bytes,
                             count: int) -> bytes:
        """One single-instance slice of a run: the zero-parse analogue
        of :meth:`_forward_query_raw`, synthesizing status frames for
        everything the JSON path answers with router-built envelopes.
        """
        name = self.wire_symbols.name_of(iid)
        placed = self.instances.get(name) if name is not None else None
        if placed is None:
            return self._synth_status(count, wire.ST_UNKNOWN_INSTANCE)
        deadline = time.perf_counter() + self.config.read_retry_deadline_s
        while True:
            w = self._pick_worker(placed)
            if w is None:
                if self._any_routable(placed):
                    self.metrics.shed_router += count
                    return self._synth_status(
                        count, wire.ST_SHED_ROUTER,
                        value=float(len(placed.replicas)))
                if time.perf_counter() >= deadline:
                    return self._synth_status(
                        count, wire.ST_DISCONNECTED)
                await asyncio.sleep(0.05)  # a replica is recovering
                continue
            if w.chaos_delay_s > 0:
                await asyncio.sleep(w.chaos_delay_s)
            link = w.live_bin_link()
            if link is None:
                self.supervisor.notify_suspect(w)
                if time.perf_counter() >= deadline:
                    return self._synth_status(
                        count, wire.ST_DISCONNECTED, value=1.0)
                await asyncio.sleep(0.01)  # don't spin while it heals
                continue
            t0 = time.perf_counter()
            try:
                raw = await link.request_run(seg, count)
            except ServiceError:
                self.metrics.worker_errors += 1
                self.supervisor.metrics.read_retries += 1
                self.supervisor.notify_suspect(w)
                if time.perf_counter() >= deadline:
                    return self._synth_status(
                        count, wire.ST_DISCONNECTED, value=1.0)
                continue
            self.metrics.forwarded += count
            self._fwd_count += 1
            if self._fwd_count % 16 == 0:  # stride-sampled router-side rtt
                self.metrics.latency.extend([time.perf_counter() - t0])
            return raw
