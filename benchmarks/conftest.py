"""Benchmark harness plumbing.

Each bench module both *times* a representative pipeline run (via
pytest-benchmark) and *prints the experiment's table* — the rows the
paper's claims predict (rounds vs D_T, memory vs D_T, ...). Tables are
collected here and emitted in the terminal summary so that

    pytest benchmarks/ --benchmark-only

reproduces every experiment in one go. EXPERIMENTS.md records the
expected shapes next to a captured run.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

_TABLES: "OrderedDict[str, str]" = OrderedDict()


def register_table(name: str, rendered: str) -> None:
    """Called by bench modules to publish a rendered experiment table."""
    _TABLES[name] = rendered


@pytest.fixture(scope="session")
def table_sink():
    return register_table


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    tr = terminalreporter
    tr.write_sep("=", "reproduced experiment tables")
    for name, rendered in _TABLES.items():
        tr.write_line("")
        tr.write_sep("-", name)
        for line in rendered.rstrip("\n").split("\n"):
            tr.write_line(line)
