"""E11 — query throughput of the prebuilt sensitivity oracle.

The selling point of the oracle layer: after one O(log D_T)-round MPC
precomputation, weight-update queries are answered in O(1) each (or
O(batch) vectorised) with no further rounds. The table reports the
one-time build cost next to point/bulk query throughput; the
acceptance bar is >= 1e5 point queries per second.
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.graph.generators import known_mst_instance
from repro.oracle import build_oracle

try:  # direct `python benchmarks/bench_e11_...py` runs (CI floor check)
    from common import QUICK, emit_json, scaled, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, scaled, timed

N = scaled(2048)
EXTRA_M = 2 * N
POINT_QUERIES = 20_000 if QUICK else 100_000
BULK_QUERIES = 200_000 if QUICK else 1_000_000

#: Acceptance floor: a prebuilt oracle must clear this point-query rate.
MIN_POINT_QPS = 1e5


def _build():
    g, _ = known_mst_instance("random", N, extra_m=EXTRA_M, rng=17)
    t0 = time.perf_counter()
    oracle = build_oracle(g, oracle_labels=True)
    build_s = time.perf_counter() - t0
    return g, oracle, build_s


def _sweep():
    g, oracle, build_s = _build()
    rng = np.random.default_rng(23)

    edges = rng.integers(0, g.m, POINT_QUERIES).tolist()
    weights = rng.uniform(0.0, 2.0, POINT_QUERIES).tolist()
    t0 = time.perf_counter()
    survived = 0
    for e, x in zip(edges, weights):
        survived += oracle.survives(e, x)
    point_s = time.perf_counter() - t0
    point_qps = POINT_QUERIES / point_s

    bulk_e = rng.integers(0, g.m, BULK_QUERIES)
    bulk_x = rng.uniform(0.0, 2.0, BULK_QUERIES)
    t0 = time.perf_counter()
    bulk_hits = int(oracle.survives_bulk(bulk_e, bulk_x).sum())
    bulk_s = time.perf_counter() - t0
    bulk_qps = BULK_QUERIES / bulk_s

    rows = [
        ("build (precompute rounds)", oracle.precompute_rounds, "-", "-"),
        ("build (wall)", 1, round(build_s, 4), "-"),
        ("point survives()", POINT_QUERIES, round(point_s, 4),
         f"{point_qps:,.0f}"),
        ("bulk survives_bulk()", BULK_QUERIES, round(bulk_s, 4),
         f"{bulk_qps:,.0f}"),
    ]
    stats = {"point_qps": point_qps, "bulk_qps": bulk_qps,
             "survived": survived, "bulk_hits": bulk_hits}
    return rows, stats


def test_e11_table(table_sink, benchmark):
    with timed() as t:
        rows, stats = _sweep()
    emit_json(
        "E11",
        {"n": N, "extra_m": EXTRA_M, "point_queries": POINT_QUERIES,
         "bulk_queries": BULK_QUERIES},
        ["operation", "count", "wall (s)", "queries/s"], rows,
        wall_s=t.wall_s,
        point_qps=stats["point_qps"], bulk_qps=stats["bulk_qps"],
    )
    assert stats["point_qps"] >= MIN_POINT_QPS, \
        f"point throughput {stats['point_qps']:,.0f} q/s below 1e5"
    assert stats["bulk_qps"] >= stats["point_qps"]
    assert 0 < stats["survived"] < POINT_QUERIES  # both outcomes exercised

    g, oracle, _ = _build()
    rng = np.random.default_rng(1)
    e = rng.integers(0, g.m, 100_000)
    x = rng.uniform(0.0, 2.0, 100_000)
    benchmark.pedantic(lambda: oracle.survives_bulk(e, x),
                       rounds=5, iterations=1)
    table_sink(
        "E11: oracle query throughput after one MPC precomputation "
        f"(n={N}, m={N - 1 + EXTRA_M})",
        render_table(["operation", "count", "wall (s)", "queries/s"], rows),
    )


if __name__ == "__main__":
    rows, stats = _sweep()
    print(render_table(["operation", "count", "wall (s)", "queries/s"], rows))
    ok = stats["point_qps"] >= MIN_POINT_QPS
    print(f"point-query floor (1e5/s): {'PASS' if ok else 'FAIL'}")
    raise SystemExit(0 if ok else 1)
