"""E18 — chaos recovery: kill a replica mid-storm, lose nothing.

The self-healing claim behind the S24 supervision layer: a router
fleet under a full query storm survives the SIGKILL of the *primary*
replica of its instance with **zero failed read queries** (reads are
pure, so mid-request disconnects retry transparently on the live
replica), writes keep landing throughout via primary failover, and the
killed worker respawns, catches up from the generation ledger (latest
snapshot + patch-log replay) and re-enters rotation bit-identical to
the fleet that never died.

The kill is injected through the router's own deterministic chaos
harness (the ``chaos`` wire op, ``kill:W@T``) — the benchmark
dogfoods the same fault path CI's chaos-smoke job uses.

Acceptance bars:

* the storm completes with ZERO transport errors across the kill, the
  failover rebuild, and the respawn;
* both writes fired during the outage succeed: the structural rebuild
  fails over to the promoted replica (``failovers >= 1``) and the
  follow-up re-pricing patches, landing in the ledger's patch log;
* the killed worker respawns (``restarts >= 1``) and time-to-recovery
  p99 stays under ``RECOVERY_BOUND_S``;
* post-recovery, EVERY worker (including the respawned one) answers
  the ledger's latest generation bit-identical to a locally rebuilt +
  locally patched reference oracle.
"""

import asyncio
import os
import time

from repro.analysis import render_table
from repro.graph.generators import known_mst_instance
from repro.oracle import build_oracle
from repro.service import InstanceUpdater, RouterConfig, RouterTier
from repro.service.loadgen import LoadStats, make_plan, run_tcp

try:  # direct `python benchmarks/bench_e18_...py` runs
    from common import QUICK, emit_json, scaled, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, scaled, timed

N = scaled(768)
EXTRA_M = 2 * N
TOTAL_QUERIES = 4_000 if QUICK else 20_000
CLIENTS = 4
PIPELINE_DEPTH = 32
SHARDS = 2
WORKERS = 3
REPLICATION = 2
KILL_AT_S = 0.4          #: chaos plan: SIGKILL the primary this far in
WRITE_AT_S = 0.6         #: first write fired while the primary is down
IDENTITY_STRIDE = 13     #: every 13th edge probed for bit-identity
RECOVERY_BOUND_S = 60.0  #: time-to-recovery p99 ceiling (shared runners)


def _references(g):
    """Ground truth for both mid-outage writes, computed up front.

    The storm fires (1) a rebuild-forcing tree re-pricing — served by
    the *promoted* replica, since the primary is dead — then (2) a
    threshold-preserving non-tree re-pricing on the new generation.
    The ledger afterwards reads "generation 1 snapshot + one patch",
    which is exactly what the respawned worker must adopt and replay.
    """
    ref0 = build_oracle(g)
    probe0 = InstanceUpdater("probe0", g, ref0)
    rebuild_edge = next(e for e in range(g.m_tree)
                        if probe0.classify(e, 1e-6) == "rebuilt")
    g1 = g.copy()
    g1.w[rebuild_edge] = 1e-6
    ref1 = build_oracle(g1)
    probe1 = InstanceUpdater("probe1", g1, ref1)
    patch_edge = next(
        e for e in range(g.m) if not ref1.tree_mask[e]
        and probe1.classify(e, float(ref1.w[e]) + 5.0) == "patched")
    patch_w = float(ref1.w[patch_edge]) + 5.0
    final = build_oracle(g1)
    final.reprice(patch_edge, patch_w)
    return rebuild_edge, patch_edge, patch_w, final


async def _sweep_async():
    g, _ = known_mst_instance("random", N, extra_m=EXTRA_M, rng=37)
    rebuild_edge, patch_edge, patch_w, final = _references(g)
    plan = make_plan({"random": g.m}, TOTAL_QUERIES, seed=9)

    rt = RouterTier(RouterConfig(
        workers=WORKERS, replication=REPLICATION, shards=SHARDS,
        max_batch=512, batch_window_s=0.001, queue_depth=1 << 15,
        port=0, heartbeat_s=0.05, restart_backoff_s=0.01,
        read_retry_deadline_s=30.0))
    await rt.start(serve_tcp=True)
    writes = {}
    try:
        await rt.add_instance("random", g)
        placed = rt.instances["random"]
        victim = rt.workers[placed.replicas[0]]  # the canonical primary
        host, port = rt.tcp_address

        # arm the kill through the wire op — the same path loadgen
        # --chaos and the CI chaos-smoke job exercise
        armed = await rt.handle_request(
            {"op": "chaos", "spec": f"kill:{victim.worker_id}@{KILL_AT_S}"})
        assert armed["ok"] and armed["result"]["events"] == 1

        sup = rt.supervisor

        def _recovered():
            return (sup.metrics.restarts >= 1 and not sup._recovering
                    and all(w.up and not w.stale
                            for w in rt.workers.values()))

        async def storm():
            # drive query plans back-to-back until the fleet has fully
            # recovered, so the zero-failed-reads gate provably spans
            # the kill, the failover writes, the respawn, and the
            # ledger catch-up — not just the first plan's wall-clock
            parts = []
            start = time.perf_counter()
            deadline = start + 120.0
            while True:
                parts.append(await run_tcp(host, port, plan,
                                           clients=CLIENTS,
                                           pipeline=PIPELINE_DEPTH))
                if _recovered() or time.perf_counter() >= deadline:
                    merged = LoadStats.merge(parts)
                    # sequential parts: the wall is the whole window,
                    # not the longest part (merge assumes concurrency)
                    merged.wall_s = time.perf_counter() - start
                    return merged

        async def outage_writes():
            await asyncio.sleep(WRITE_AT_S)
            t0 = time.perf_counter()
            rebuilt = await rt.update(
                {"op": "update", "instance": "random",
                 "edge": rebuild_edge, "weight": 1e-6})
            patched = await rt.update(
                {"op": "update", "instance": "random",
                 "edge": patch_edge, "weight": patch_w})
            writes.update(rebuilt=rebuilt, patched=patched,
                          wall_s=time.perf_counter() - t0)

        t0 = time.perf_counter()
        stats, _ = await asyncio.gather(storm(), outage_writes())
        storm_wall = time.perf_counter() - t0

        assert stats.errors == 0, (
            f"{stats.errors} read queries failed across the kill")
        assert writes["rebuilt"]["action"] == "rebuilt"
        assert writes["rebuilt"]["generation"] == 1
        assert writes["patched"]["action"] == "patched"
        assert rt._injectors[-1].fired == [
            f"kill:{victim.worker_id}@{KILL_AT_S:.2f}"]

        # the storm only ends once recovery finished (or its deadline
        # passed — which is a failure)
        assert _recovered(), (
            f"fleet did not recover within the storm deadline: "
            f"{sup.metrics.snapshot()}")
        assert stats.wall_s > KILL_AT_S, (
            "storm ended before the kill fired — the gate was vacuous")

        # post-recovery: every worker (respawned one included) answers
        # the ledger's generation, bit-identical to the local reference
        entry = sup.ledger.latest("random")
        assert entry.generation == 1
        assert entry.patches == [(patch_edge, patch_w)]
        hosted = [rt.workers[wid] for wid in placed.replicas]
        assert victim in hosted
        for w in hosted:
            for e in range(0, g.m, IDENTITY_STRIDE):
                r = await w.control.request(
                    {"op": "sensitivity", "instance": "random",
                     "edge": e})
                assert r["ok"], (w.worker_id, e, r)
                assert r["generation"] == entry.generation
                assert r["result"] == float(final.sens[e]), (
                    f"worker {w.worker_id} diverged at edge {e} "
                    f"after recovery")

        metrics = await rt.router_metrics()
    finally:
        await rt.stop()
    return stats, storm_wall, writes, metrics


def _sweep():
    stats, storm_wall, writes, metrics = asyncio.run(_sweep_async())
    sup = metrics["supervisor"]
    rows = [
        ("storm across the kill", stats.sent,
         round(stats.wall_s, 3), f"{stats.qps:,.0f}", stats.errors,
         stats.shed),
        ("outage writes (rebuild + patch)", 2,
         round(writes["wall_s"], 3), "-",
         0 if writes["rebuilt"]["ok"] and writes["patched"]["ok"] else 1,
         "-"),
        ("recovery", sup["restarts"],
         sup["recovery_p99_s"], "-", "-", "-"),
    ]
    stats_out = {
        "storm_errors": stats.errors,
        "storm_shed": stats.shed,
        "storm_qps": stats.qps,
        "rebuild_generation": writes["rebuilt"].get("generation"),
        "failover_ok": bool(writes["rebuilt"].get("ok")
                            and writes["patched"].get("ok")),
        "supervisor": sup,
        "ledger": metrics["ledger"],
    }
    return rows, stats_out


def _check(stats):
    assert stats["storm_errors"] == 0, (
        "reads failed across the kill — retries must make the crash "
        "invisible to readers")
    assert stats["failover_ok"], "a write failed during the outage"
    assert stats["rebuild_generation"] == 1
    sup = stats["supervisor"]
    assert sup["restarts"] >= 1, "the killed worker never respawned"
    assert sup["failovers"] >= 1, (
        "the outage rebuild was not served by a promoted replica")
    assert sup["evictions"] == 0, "one crash must not evict the worker"
    assert sup["recovery_p99_s"] is not None
    assert sup["recovery_p99_s"] <= RECOVERY_BOUND_S, (
        f"time-to-recovery p99 {sup['recovery_p99_s']}s above the "
        f"{RECOVERY_BOUND_S:.0f}s bound")
    assert stats["ledger"]["random"]["generation"] == 1
    assert stats["ledger"]["random"]["patches"] == 1


HEADERS = ["phase", "count", "wall (s)", "throughput", "errors", "shed"]


def test_e18_table(table_sink, benchmark):
    with timed() as t:
        rows, stats = _sweep()
    emit_json(
        "E18",
        {"n": N, "extra_m": EXTRA_M, "queries": TOTAL_QUERIES,
         "workers": WORKERS, "replication": REPLICATION,
         "shards": SHARDS, "clients": CLIENTS,
         "pipeline_depth": PIPELINE_DEPTH, "kill_at_s": KILL_AT_S,
         "recovery_bound_s": RECOVERY_BOUND_S},
        HEADERS, rows, wall_s=t.wall_s,
        storm_qps=stats["storm_qps"],
        storm_errors=stats["storm_errors"],
        supervisor=stats["supervisor"],
        ledger=stats["ledger"],
    )
    _check(stats)
    sup = stats["supervisor"]
    table_sink(
        f"E18: chaos recovery, primary SIGKILLed at {KILL_AT_S}s of a "
        f"{TOTAL_QUERIES:,}-query storm ({WORKERS} workers, "
        f"replication {REPLICATION}; 0 failed reads, "
        f"{sup['restarts']} respawn(s), {sup['failovers']} failover(s), "
        f"recovery p99 {sup['recovery_p99_s']}s, post-recovery answers "
        f"bit-identical)",
        render_table(HEADERS, rows),
    )


if __name__ == "__main__":
    t0 = time.perf_counter()
    rows, stats = _sweep()
    print(render_table(HEADERS, rows))
    sup = stats["supervisor"]
    print(f"0 failed reads, {sup['restarts']} respawn(s), "
          f"{sup['failovers']} failover(s), recovery p99 "
          f"{sup['recovery_p99_s']}s, wall {time.perf_counter() - t0:.1f}s")
    _check(stats)
    print("PASS")
