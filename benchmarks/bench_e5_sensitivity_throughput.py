"""E5 — sensitivity correctness at scale + simulator throughput.

For growing n, run the full MPC sensitivity pipeline and the sequential
Tarjan-style oracle; assert exact agreement and report wall-clock of
both (the simulator is expected to be slower — it is simulating a
cluster — the point is the agreement column and the round counts).
"""

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.baselines import sequential_sensitivity
from repro.core.sensitivity import mst_sensitivity

from common import QUICK, emit_json, shape_instance, timed

SIZES = (256, 512, 1024) if QUICK else (512, 2048, 8192)
HEADERS = ["n", "m", "core rounds", "mpc wall (s)", "oracle wall (s)",
           "exact match"]


def _sweep():
    rows = []
    for n in SIZES:
        g = shape_instance("random", n, seed=3)
        t0 = time.perf_counter()
        r = mst_sensitivity(g, oracle_labels=True)
        t1 = time.perf_counter()
        o = sequential_sensitivity(g)
        t2 = time.perf_counter()
        agree = bool(np.allclose(r.sensitivity, o.sensitivity))
        rows.append((n, g.m, r.core_rounds, round(t1 - t0, 3),
                     round(t2 - t1, 3), agree))
        assert agree
    return rows


def test_e5_table(table_sink, benchmark):
    with timed() as t:
        rows = _sweep()
    g = shape_instance("random", SIZES[1], seed=3)
    benchmark.pedantic(
        lambda: mst_sensitivity(g, oracle_labels=True), rounds=3,
        iterations=1,
    )
    emit_json("E5", {"sizes": list(SIZES)}, HEADERS, rows, wall_s=t.wall_s)
    table_sink(
        "E5: sensitivity at scale — MPC pipeline vs sequential oracle",
        render_table(HEADERS, rows),
    )
