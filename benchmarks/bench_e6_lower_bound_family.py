"""E6 — Theorem 5.2: the 1-vs-2-cycle family.

Graph diameter stays 2, yet the candidate tree's diameter is Θ(n), and
the measured rounds grow with log D_T = Θ(log n) — the conditional
lower bound says no verifier can avoid this. Both family sides are
verified (one-cycle: accept; two-cycle: reject as not-a-tree).
"""

import pytest

from repro.analysis import fit_log, render_table
from repro.core.verification import verify_mst

from common import QUICK, emit_json, lower_bound_instance, timed

SIZES = (64, 256, 1024) if QUICK else (64, 256, 1024, 4096)
HEADERS = ["n", "diam(G)", "D_T ~", "rounds (1-cycle side)",
           "2-cycle verdict"]


def _sweep():
    rows = []
    for n in SIZES:
        g1 = lower_bound_instance(n, False)
        g2 = lower_bound_instance(n, True)
        r1 = verify_mst(g1, oracle_labels=True)
        r2 = verify_mst(g2, oracle_labels=True)
        assert r1.is_mst and not r2.is_mst
        rows.append((n, 2, n, r1.rounds, r2.reason))
    return rows


def test_e6_table(table_sink, benchmark):
    with timed() as t:
        rows = _sweep()
    g = lower_bound_instance(SIZES[2], False)
    benchmark.pedantic(
        lambda: verify_mst(g, oracle_labels=True), rounds=3, iterations=1
    )
    fit = fit_log([r[0] for r in rows], [r[3] for r in rows])
    emit_json(
        "E6", {"sizes": list(SIZES)}, HEADERS, rows, wall_s=t.wall_s,
        fit={"slope": fit.slope, "intercept": fit.intercept, "r2": fit.r2},
    )
    table_sink(
        f"E6: 1-vs-2-cycle hard family (rounds fit: {fit.slope:.1f}"
        f"*log2(n){fit.intercept:+.1f}, R2={fit.r2:.3f})",
        render_table(HEADERS, rows),
    )
    assert fit.r2 > 0.8
    r = [row[3] for row in rows]
    assert r == sorted(r) and r[-1] > r[0]
