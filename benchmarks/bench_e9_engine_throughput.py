"""E9 — engine fidelity and cost: message-level vs vectorised.

Both engines execute the same verification pipeline; outputs and charged
model rounds must match exactly, and the table reports the wall-clock
overhead of simulating every exchange (plus the transport-round count
the message-level engine additionally measures). Since the fabric went
columnar (one vectorised permutation per round, DESIGN.md §2.4) the
overhead factor is bounded instead of growing with ``n``, so the sweep
extends to n >= 1024 — the sizes the serving layer actually runs at.

Acceptance gate (mirrors E11/E13's floors): the overhead factor at the
quick sizes must stay under ``MAX_OVERHEAD``, which is recorded in
``BENCH_E9.json`` so the perf trajectory is checkable after the fact.
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.core.verification import verify_mst
from repro.mpc import MPCConfig

try:  # direct `python benchmarks/bench_e9_...py` runs (CI regression gate)
    from common import QUICK, emit_json, shape_instance, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, shape_instance, timed

#: The pre-columnar engine ran 167-275x slower than `local` here; the
#: columnar fabric keeps the measured factor around 3-30x. The cap is
#: deliberately loose (shared CI runners make wall ratios noisy at smoke
#: sizes) but far below the packet-loop regime, so a regression that
#: reintroduces per-packet Python work fails the gate.
MAX_OVERHEAD = 80.0 if QUICK else 60.0

#: Gate sizes: the quick sweep (also the prefix of the full sweep).
GATE_SIZES = (48, 96, 192)
SIZES = GATE_SIZES if QUICK else GATE_SIZES + (512, 1024)

HEADERS = ["n", "m", "model rounds (both)", "transport rounds",
           "local wall (s)", "message-level wall (s)", "overhead x"]


def _sweep():
    rows = []
    overheads = {}
    for n in SIZES:
        g = shape_instance("random", n, seed=5)
        t0 = time.perf_counter()
        rl = verify_mst(g, engine="local")
        t1 = time.perf_counter()
        rd = verify_mst(g, engine="distributed",
                        config=MPCConfig(delta=0.6))
        t2 = time.perf_counter()
        assert rl.is_mst == rd.is_mst
        assert np.array_equal(rl.pathmax, rd.pathmax)
        assert rl.rounds == rd.rounds
        overheads[n] = (t2 - t1) / max(t1 - t0, 1e-9)
        rows.append((
            n, g.m, rl.rounds, rd.report.transport_rounds,
            round(t1 - t0, 3), round(t2 - t1, 3),
            round(overheads[n], 1),
        ))
    return rows, overheads


def _gate(overheads):
    worst = max(overheads[n] for n in GATE_SIZES)
    return worst <= MAX_OVERHEAD, worst


def test_e9_table(table_sink, benchmark):
    with timed() as t:
        rows, overheads = _sweep()
    g = shape_instance("random", SIZES[0], seed=5)
    benchmark.pedantic(
        lambda: verify_mst(g, engine="distributed",
                           config=MPCConfig(delta=0.6)),
        rounds=2, iterations=1,
    )
    emit_json("E9", {"sizes": list(SIZES), "gate_sizes": list(GATE_SIZES),
                     "max_overhead": MAX_OVERHEAD},
              HEADERS, rows, wall_s=t.wall_s,
              overhead_worst=round(max(overheads.values()), 1))
    table_sink(
        "E9: engine equivalence and message-level overhead "
        "(verification pipeline)",
        render_table(HEADERS, rows),
    )
    ok, worst = _gate(overheads)
    assert ok, (
        f"message-level overhead {worst:.1f}x at the gate sizes exceeds "
        f"the {MAX_OVERHEAD:.0f}x cap — the columnar fabric regressed"
    )


if __name__ == "__main__":
    rows, overheads = _sweep()
    print(render_table(HEADERS, rows))
    ok, worst = _gate(overheads)
    print(f"overhead gate ({MAX_OVERHEAD:.0f}x cap at n<={max(GATE_SIZES)}): "
          f"worst {worst:.1f}x -> {'PASS' if ok else 'FAIL'}")
    raise SystemExit(0 if ok else 1)
