"""E9 — engine fidelity and cost: message-level vs vectorised.

Both engines execute the same verification pipeline; outputs and charged
model rounds must match exactly, and the table reports the wall-clock
overhead of simulating every packet (plus the transport-round count the
message-level engine additionally measures).
"""

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core.verification import verify_mst
from repro.mpc import MPCConfig

from common import emit_json, shape_instance, timed

SIZES = (48, 96, 192)
HEADERS = ["n", "m", "model rounds (both)", "transport rounds",
           "local wall (s)", "message-level wall (s)", "overhead x"]


def _sweep():
    rows = []
    for n in SIZES:
        g = shape_instance("random", n, seed=5)
        t0 = time.perf_counter()
        rl = verify_mst(g, engine="local")
        t1 = time.perf_counter()
        rd = verify_mst(g, engine="distributed",
                        config=MPCConfig(delta=0.6))
        t2 = time.perf_counter()
        assert rl.is_mst == rd.is_mst
        assert np.allclose(rl.pathmax, rd.pathmax)
        assert rl.rounds == rd.rounds
        rows.append((
            n, g.m, rl.rounds, rd.report.transport_rounds,
            round(t1 - t0, 3), round(t2 - t1, 3),
            round((t2 - t1) / max(t1 - t0, 1e-9), 1),
        ))
    return rows


def test_e9_table(table_sink, benchmark):
    with timed() as t:
        rows = _sweep()
    g = shape_instance("random", SIZES[0], seed=5)
    benchmark.pedantic(
        lambda: verify_mst(g, engine="distributed",
                           config=MPCConfig(delta=0.6)),
        rounds=2, iterations=1,
    )
    emit_json("E9", {"sizes": list(SIZES)}, HEADERS, rows, wall_s=t.wall_s)
    table_sink(
        "E9: engine equivalence and message-level overhead "
        "(verification pipeline)",
        render_table(HEADERS, rows),
    )
