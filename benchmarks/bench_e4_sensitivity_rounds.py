"""E4 — Theorem 4.1: sensitivity rounds are O(log D_T), a constant
factor above verification.

Sweep as E1; columns: verification core rounds, sensitivity core
rounds, their ratio, and the peak live note count (Claim 4.13: O(n)).
"""

import pytest

from repro.analysis import fit_log, render_table
from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import verify_mst

from common import DIAMETERS, N_DEFAULT, diameter_instance, emit_json, timed

HEADERS = ["D_T", "verify core", "sens core", "sens/verify",
           "notes peak (<= O(n))"]


def _sweep():
    rows = []
    for d in DIAMETERS:
        g = diameter_instance(N_DEFAULT, d)
        v = verify_mst(g, oracle_labels=True)
        s = mst_sensitivity(g, oracle_labels=True)
        rows.append((d, v.core_rounds, s.core_rounds,
                     s.core_rounds / v.core_rounds, s.notes_peak))
    return rows


def test_e4_table(table_sink, benchmark):
    with timed() as t:
        rows = _sweep()
    g = diameter_instance(N_DEFAULT, DIAMETERS[2])
    benchmark.pedantic(
        lambda: mst_sensitivity(g, oracle_labels=True), rounds=3,
        iterations=1,
    )
    fit = fit_log([r[0] for r in rows], [r[2] for r in rows])
    emit_json(
        "E4", {"n": N_DEFAULT, "diameters": list(DIAMETERS)},
        HEADERS, rows, wall_s=t.wall_s,
        fit={"slope": fit.slope, "intercept": fit.intercept, "r2": fit.r2},
    )
    table_sink(
        f"E4: sensitivity rounds vs D_T  (n={N_DEFAULT}; sens fit: "
        f"{fit.slope:.1f}*log2(D){fit.intercept:+.1f}, R2={fit.r2:.3f})",
        render_table(HEADERS, rows),
    )
    assert fit.r2 > 0.9
    for _, v, s, ratio, notes in rows:
        assert 1.0 < ratio < 6.0
        assert notes <= 6 * N_DEFAULT
