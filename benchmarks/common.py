"""Shared instance builders and sizing for the benchmark suite."""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.graph.generators import (
    attach_nontree_edges,
    backbone_tree,
    known_mst_instance,
    one_vs_two_cycles_instance,
)
from repro.graph.graph import WeightedGraph

#: Default sweep sizes — large enough for clean shapes, small enough for
#: the whole suite to run in a few minutes.
N_DEFAULT = 4096
EXTRA_M_FACTOR = 2
DIAMETERS = (8, 32, 128, 512, 2048)
N_SWEEP = (1024, 2048, 4096, 8192)


@lru_cache(maxsize=64)
def diameter_instance(n: int, d: int, seed: int = 0) -> WeightedGraph:
    tree = backbone_tree(n, d, rng=seed + d)
    return attach_nontree_edges(tree, EXTRA_M_FACTOR * n, rng=seed + d + 1,
                                mode="mst")


@lru_cache(maxsize=16)
def shape_instance(shape: str, n: int, seed: int = 0) -> WeightedGraph:
    g, _ = known_mst_instance(shape, n, extra_m=EXTRA_M_FACTOR * n, rng=seed)
    return g


@lru_cache(maxsize=16)
def lower_bound_instance(n: int, two: bool) -> WeightedGraph:
    g, _ = one_vs_two_cycles_instance(n, two_cycles=two, rng=n)
    return g
