"""Shared instance builders, sizing and result emission for benchmarks.

Every ``bench_e*.py`` both prints its experiment table (terminal
summary) and writes a machine-readable ``BENCH_E*.json`` via
:func:`emit_json` — params, the table rows (which carry the round
counts), and wall-clock — so the perf trajectory is tracked across
commits. ``REPRO_BENCH_QUICK=1`` shrinks the sweep sizes for CI smoke
runs (see :func:`scaled`); ``REPRO_BENCH_RESULTS`` overrides the output
directory (default ``benchmarks/results``).
"""

from __future__ import annotations

import json
import os
import time
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.graph.generators import (
    attach_nontree_edges,
    backbone_tree,
    known_mst_instance,
    one_vs_two_cycles_instance,
)
from repro.graph.graph import WeightedGraph

#: CI smoke mode: shrink sweeps so the whole suite runs in seconds.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def scaled(n: int, floor: int = 256) -> int:
    """Full-size ``n`` normally; ``max(floor, n // 8)`` under QUICK."""
    return n if not QUICK else max(floor, n // 8)


#: Default sweep sizes — large enough for clean shapes, small enough for
#: the whole suite to run in a few minutes.
N_DEFAULT = scaled(4096)
EXTRA_M_FACTOR = 2
DIAMETERS = (8, 32, 128) if QUICK else (8, 32, 128, 512, 2048)
N_SWEEP = (256, 512, 1024) if QUICK else (1024, 2048, 4096, 8192)

RESULTS_DIR = os.environ.get(
    "REPRO_BENCH_RESULTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "results"),
)


def emit_json(
    experiment: str,
    params: dict,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    wall_s: Optional[float] = None,
    **extra,
) -> str:
    """Write ``BENCH_<EXPERIMENT>.json`` alongside the printed table.

    ``rows`` are the experiment's table rows (round counts live there);
    ``params`` the sweep configuration; ``wall_s`` the wall-clock of the
    sweep. Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{experiment.upper()}.json")
    payload = {
        "experiment": experiment.upper(),
        "quick": QUICK,
        "params": params,
        "headers": list(headers),
        "rows": [list(r) for r in rows],
        "wall_s": round(wall_s, 4) if wall_s is not None else None,
        "unix_time": round(time.time(), 1),
    }
    payload.update(extra)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
    return path


class timed:
    """``with timed() as t: ...`` → ``t.wall_s`` (sweep wall-clock)."""

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.wall_s = time.perf_counter() - self._t0
        return False


@lru_cache(maxsize=64)
def diameter_instance(n: int, d: int, seed: int = 0) -> WeightedGraph:
    tree = backbone_tree(n, d, rng=seed + d)
    return attach_nontree_edges(tree, EXTRA_M_FACTOR * n, rng=seed + d + 1,
                                mode="mst")


@lru_cache(maxsize=16)
def shape_instance(shape: str, n: int, seed: int = 0) -> WeightedGraph:
    g, _ = known_mst_instance(shape, n, extra_m=EXTRA_M_FACTOR * n, rng=seed)
    return g


@lru_cache(maxsize=16)
def lower_bound_instance(n: int, two: bool) -> WeightedGraph:
    g, _ = one_vs_two_cycles_instance(n, two_cycles=two, rng=n)
    return g
