"""E12 — warm-start artifact cache: shared-prefix reuse across a batch.

The workload is the shape the staged pipeline was built for: one graph,
two consumers (think: a batch worker and an oracle builder sharing a
``cache_dir``) each running the verify + sensitivity job pair plus an
E10-style clustering ablation sweep (coin_bias / reduction_exponent
variants). Cold runs execute every stage of every job; warm runs share
one :class:`~repro.pipeline.ArtifactStore`, so the substrate prefix
runs once, the verify artifacts feed the sensitivity jobs, and the
second consumer replays everything.

Acceptance bar: >= 2x wall-clock speedup, while every result and its
charged-round report stays bit-identical to the cold run.
"""

import time

import numpy as np
import pytest

from repro.analysis import render_table
from repro.pipeline import ArtifactStore, run_sensitivity, run_verification

from common import QUICK, diameter_instance, emit_json, scaled

N = scaled(4096)
D = 32 if QUICK else 128

#: One consumer's jobs: kind, coin_bias, reduction_exponent.
SUITE = (
    ("verify", 0.5, 1.0),
    ("sensitivity", 0.5, 1.0),
    ("verify", 0.3, 1.0),
    ("verify", 0.7, 1.0),
    ("verify", 0.5, 1.5),
    ("sensitivity", 0.5, 1.5),
)
#: Two consumers share the graph (and, warm, the artifact store).
JOBS = SUITE * 2

#: Full-size runs demonstrate the >= 2x acceptance bar; under QUICK
#: (CI smoke on shared runners) the shrunken workload's wall times are
#: small enough that timing noise could flake a 2.0 gate, so the smoke
#: assertion only guards against the cache having no effect at all.
MIN_SPEEDUP = 1.2 if QUICK else 2.0


def _run_batch(store):
    g = diameter_instance(N, D)
    results = []
    t0 = time.perf_counter()
    for kind, bias, exponent in JOBS:
        kw = dict(coin_bias=bias, reduction_exponent=exponent, store=store)
        if kind == "verify":
            r, run = run_verification(g, **kw)
        else:
            r, run = run_sensitivity(g, **kw)
        results.append((r, run))
    wall = time.perf_counter() - t0
    return results, wall


def _sweep():
    cold, cold_wall = _run_batch(store=None)
    store = ArtifactStore()
    warm, warm_wall = _run_batch(store=store)

    rows = []
    for (kind, bias, ex), (rc, _), (rw, runw) in zip(JOBS, cold, warm):
        identical = (
            rc.rounds == rw.rounds
            and rc.report.to_dict() == rw.report.to_dict()
            and (np.array_equal(rc.pathmax, rw.pathmax)
                 if kind == "verify"
                 else np.array_equal(rc.sensitivity, rw.sensitivity))
        )
        rows.append((
            kind, bias, ex, rc.rounds, len(runw.executed_stages),
            len(runw.cached_stages), str(identical),
        ))
        assert identical, f"warm run diverged on {kind}/{bias}/{ex}"
    speedup = cold_wall / warm_wall
    return rows, cold_wall, warm_wall, speedup, store


def test_e12_warm_start(table_sink, benchmark):
    rows, cold_wall, warm_wall, speedup, store = _sweep()
    benchmark.pedantic(
        lambda: _run_batch(ArtifactStore()), rounds=1, iterations=1
    )
    emit_json(
        "E12",
        {"n": N, "d": D, "jobs": [list(j) for j in JOBS]},
        ["kind", "coin_bias", "reduction_exponent", "rounds",
         "stages executed", "stages replayed", "bit-identical"],
        rows, wall_s=cold_wall + warm_wall,
        cold_wall_s=round(cold_wall, 4), warm_wall_s=round(warm_wall, 4),
        speedup=round(speedup, 2), store=store.stats(),
    )
    table_sink(
        f"E12: warm-start cache, {len(JOBS)}-job batch on one graph "
        f"(n={N}, D_T={D}; cold {cold_wall:.2f}s vs warm {warm_wall:.2f}s "
        f"= {speedup:.1f}x)",
        render_table(
            ["kind", "bias", "exponent", "rounds", "executed", "replayed",
             "bit-identical"],
            rows,
        ),
    )
    # every job after the first replays its shared prefix
    executed = [r[4] for r in rows]
    assert executed[0] == 10          # first verify: all stages cold
    assert executed[1] == 4           # sensitivity: only sens-* stages
    assert all(e <= 6 for e in executed[2:])  # sweeps: clustering onward
    assert all(e == 0 for e in executed[len(SUITE):])  # consumer 2: replay
    assert speedup >= MIN_SPEEDUP, (
        f"warm-start speedup {speedup:.2f}x below {MIN_SPEEDUP}x "
        f"(cold {cold_wall:.2f}s, warm {warm_wall:.2f}s)"
    )
