"""E19 — binary columnar wire protocol vs JSON lines, end to end.

The S25 data-plane claim: the per-query cost of the service's wire
protocol — ``json.loads`` per request, dict building, ``json.dumps``
per response — dominates a deeply pipelined point-query storm, and the
fixed 16-byte binary frames of :mod:`repro.service.wire` remove it on
both sides (one ``np.frombuffer`` per pipelined read, one ``tobytes``
per response batch). On the router tier the win compounds: binary
frames are *relayed* — header peek + byte-counting splice — with zero
JSON parser invocations on the read path.

Acceptance bars:

* bit-identity **pre-timing**: for a stride of edges across all four
  point ops (plus out-of-range and wrong-kind probes), the binary
  client's response dicts equal the JSON client's exactly — same
  values, same generations, same error envelopes;
* single-connection pipelined throughput: binary >= 2x the compact
  JSON-lines driver against the same single-process service;
* router relay: binary through the front door beats JSON through the
  front door (the relay never parses, the JSON path parses twice), and
  the router's binary-door ``WireMetrics`` show the storm's frames
  with only the constant handshake escapes ever hitting ``json.loads``.
"""

import asyncio
import os
import time

from repro.analysis import render_table
from repro.graph.generators import known_mst_instance
from repro.service import (
    RouterConfig,
    RouterTier,
    SensitivityService,
    ServiceConfig,
)
from repro.service.loadgen import make_plan, run_tcp
from repro.service.server import ServiceClient

try:  # direct `python benchmarks/bench_e19_...py` runs
    from common import QUICK, emit_json, scaled, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, scaled, timed

N = scaled(2048)
EXTRA_M = 2 * N
QUERIES = 6_000 if QUICK else 30_000
PIPELINE_DEPTH = 128
SHARDS = 2
WORKERS = 2
IDENTITY_STRIDE = 13
REPEATS = 2  # best-of, absorbs scheduler noise on shared runners

#: Acceptance floors. The direct floor is the headline claim; the
#: router floor is set below the observed ~4-5x relay win to absorb
#: shared-runner noise while still catching any parse on the relay.
MIN_DIRECT_SPEEDUP = 2.0
MIN_ROUTER_SPEEDUP = 1.5 if not QUICK else 1.25

OPS = ("sensitivity", "survives", "replacement_edge", "entry_threshold")


def _graph():
    g, _ = known_mst_instance("random", N, extra_m=EXTRA_M, rng=19)
    return g


async def _identity(host, port, m) -> int:
    """Every probe must answer bit-identically over both protocols."""
    cj = await ServiceClient.connect(host, port)
    cb = await ServiceClient.connect(host, port, wire_mode="binary")
    checked = 0
    try:
        for e in list(range(0, m, IDENTITY_STRIDE)) + [m, m + 7]:
            for op in OPS:
                kw = {"edge": e, "instance": "random"}
                if op == "survives":
                    kw["weight"] = 1.25
                rj = await cj.call(op, **kw)
                rb = await cb.call(op, **kw)
                assert rj == rb, (
                    f"cross-protocol divergence at op={op} edge={e}:\n"
                    f"  json:   {rj}\n  binary: {rb}")
                checked += 1
    finally:
        await cj.close()
        await cb.close()
    return checked


async def _storm(host, port, plan, wire_mode):
    best = None
    for _ in range(REPEATS):
        stats = await run_tcp(host, port, plan, clients=1,
                              pipeline=PIPELINE_DEPTH, wire_mode=wire_mode)
        assert stats.errors == 0, (
            f"{wire_mode} storm hit {stats.errors} transport errors")
        assert stats.answered == len(plan)
        if best is None or stats.qps > best.qps:
            best = stats
    return best


async def _direct(g, plan):
    """Single-process service: identity first, then both storms."""
    svc = SensitivityService(ServiceConfig(
        shards=SHARDS, max_batch=512, batch_window_s=0.001,
        queue_depth=1 << 15, port=0))
    svc.add_instance("random", g)
    await svc.start(serve_tcp=True)
    try:
        host, port = svc.tcp_address
        checked = await _identity(host, port, g.m)
        sj = await _storm(host, port, plan, "json")
        sb = await _storm(host, port, plan, "binary")
        wirem = {proto: wm.snapshot()
                 for proto, wm in svc.wire.items()}
    finally:
        await svc.stop()
    return checked, sj, sb, wirem


async def _router(g, plan):
    """Router front door: the relay never parses a binary frame."""
    rt = RouterTier(RouterConfig(
        workers=WORKERS, replication=2, shards=SHARDS, max_batch=512,
        batch_window_s=0.001, queue_depth=1 << 15, port=0))
    await rt.start(serve_tcp=True)
    try:
        await rt.add_instance("random", g)
        host, port = rt.tcp_address
        checked = await _identity(host, port, g.m)
        sj = await _storm(host, port, plan, "json")
        sb = await _storm(host, port, plan, "binary")
        wirem = {proto: wm.snapshot() for proto, wm in rt.wire.items()}
    finally:
        await rt.stop()
    # zero-parse evidence: the storm's frames went through the binary
    # door, but json.loads only ever saw the constant escape handshakes
    bm = wirem["binary"]
    assert bm["frames_in"] >= REPEATS * len(plan), bm
    assert bm["json_decodes"] <= 8 * REPEATS + 16, (
        f"router binary door parsed JSON on the relay path: {bm}")
    return checked, sj, sb, wirem


def _sweep():
    g = _graph()
    plan = make_plan({"random": g.m}, QUERIES, seed=11)

    d_checked, dj, db, d_wire = asyncio.run(_direct(g, plan))
    r_checked, rj, rb, r_wire = asyncio.run(_router(g, plan))

    direct_speedup = db.qps / dj.qps if dj.qps else 0.0
    router_speedup = rb.qps / rj.qps if rj.qps else 0.0
    rows = [
        ("direct / json lines", QUERIES, round(dj.wall_s, 3),
         f"{dj.qps:,.0f}", round(dj.encode_s, 3), "1.00x"),
        ("direct / binary", QUERIES, round(db.wall_s, 3),
         f"{db.qps:,.0f}", round(db.encode_s, 3),
         f"{direct_speedup:.2f}x"),
        (f"router x {WORKERS} / json lines", QUERIES, round(rj.wall_s, 3),
         f"{rj.qps:,.0f}", round(rj.encode_s, 3), "1.00x"),
        (f"router x {WORKERS} / binary relay", QUERIES,
         round(rb.wall_s, 3), f"{rb.qps:,.0f}", round(rb.encode_s, 3),
         f"{router_speedup:.2f}x"),
    ]
    stats = {
        "identity_checked": d_checked + r_checked,
        "direct_json_qps": dj.qps,
        "direct_binary_qps": db.qps,
        "direct_speedup": direct_speedup,
        "router_json_qps": rj.qps,
        "router_binary_qps": rb.qps,
        "router_speedup": router_speedup,
        "direct_wire": d_wire,
        "router_wire": r_wire,
    }
    return rows, stats


def _check(stats):
    assert stats["identity_checked"] > 0
    assert stats["direct_speedup"] >= MIN_DIRECT_SPEEDUP, (
        f"binary wire {stats['direct_speedup']:.2f}x below the "
        f"{MIN_DIRECT_SPEEDUP}x single-connection floor "
        f"(json {stats['direct_json_qps']:,.0f} qps, "
        f"binary {stats['direct_binary_qps']:,.0f} qps)")
    assert stats["router_speedup"] >= MIN_ROUTER_SPEEDUP, (
        f"binary relay {stats['router_speedup']:.2f}x below the "
        f"{MIN_ROUTER_SPEEDUP}x router floor "
        f"(json {stats['router_json_qps']:,.0f} qps, "
        f"binary {stats['router_binary_qps']:,.0f} qps)")
    rbm = stats["router_wire"]["binary"]
    assert rbm["json_decodes"] <= 8 * REPEATS + 16


HEADERS = ["mode", "queries", "wall (s)", "throughput",
           "driver encode (s)", "speedup"]


def test_e19_table(table_sink, benchmark):
    with timed() as t:
        rows, stats = _sweep()
    emit_json(
        "E19",
        {"n": N, "extra_m": EXTRA_M, "queries": QUERIES,
         "pipeline_depth": PIPELINE_DEPTH, "shards": SHARDS,
         "workers": WORKERS, "repeats": REPEATS,
         "min_direct_speedup": MIN_DIRECT_SPEEDUP,
         "min_router_speedup": MIN_ROUTER_SPEEDUP},
        HEADERS, rows, wall_s=t.wall_s,
        identity_checked=stats["identity_checked"],
        direct_speedup=round(stats["direct_speedup"], 3),
        router_speedup=round(stats["router_speedup"], 3),
        direct_wire=stats["direct_wire"],
        router_wire=stats["router_wire"],
    )
    _check(stats)
    table_sink(
        f"E19: binary wire protocol (n={N}, {QUERIES:,} queries, "
        f"pipeline {PIPELINE_DEPTH}; direct "
        f"{stats['direct_speedup']:.2f}x vs {MIN_DIRECT_SPEEDUP}x floor, "
        f"router relay {stats['router_speedup']:.2f}x vs "
        f"{MIN_ROUTER_SPEEDUP}x floor; "
        f"{stats['identity_checked']} probes bit-identical)",
        render_table(HEADERS, rows),
    )


if __name__ == "__main__":
    t0 = time.perf_counter()
    rows, stats = _sweep()
    print(render_table(HEADERS, rows))
    print(f"direct {stats['direct_speedup']:.2f}x "
          f"(floor {MIN_DIRECT_SPEEDUP}x), router relay "
          f"{stats['router_speedup']:.2f}x (floor {MIN_ROUTER_SPEEDUP}x), "
          f"wall {time.perf_counter() - t0:.1f}s")
    _check(stats)
    print("PASS")
