"""E17 — streaming churn: scoped incremental rebuilds vs cold rebuilds.

The S23 streaming subsystem's economic claim: a non-tree-only
structural batch (the common case under churn — adds land heavy, stale
edges get dropped) re-runs only the delta rows of the per-edge stages
(lca, adgraph, labels, pathmax, decide spliced from the previous
generation's artifacts) plus the sensitivity aggregation, instead of
the full 14-stage pipeline — while producing the *bit-identical*
oracle a cold rebuild would.

Workload: ``CYCLES`` rounds of a ``K``-edge heavy add batch followed
by the matching remove batch over a dense instance (``extra_m = 4n``).
After **every** batch the oracle is checked bit-for-bit against a full
pipeline run from an empty store — the cold path is not a strawman, it
is the correctness reference, and its wall-clock is the baseline.

Acceptance bars:

* bit-identity after every batch (w, tree_mask, threshold, sens,
  cover_edge all ``array_equal`` vs the cold rebuild);
* every add/remove batch takes the scoped path (``scoped`` with 5
  spliced stages) — a tree-affecting control batch is also applied,
  checked, and excluded from timing;
* total scoped apply time beats total cold rebuild time by
  ``MIN_SPEEDUP`` (2x at n>=4096; relaxed under REPRO_BENCH_QUICK
  where the instance shrinks and fixed costs dominate).
"""

import os
import time

import numpy as np

from repro.analysis import render_table
from repro.graph.generators import known_mst_instance
from repro.oracle import SensitivityOracle
from repro.pipeline import ArtifactStore, run_sensitivity
from repro.service import InstanceUpdater

try:  # direct `python benchmarks/bench_e17_...py` runs
    from common import QUICK, emit_json, scaled, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, scaled, timed

N = scaled(4096)
EXTRA_M = 4 * N
K = 16                      #: ops per batch
CYCLES = 3 if QUICK else 6  #: add-batch + remove-batch rounds

#: Scoped-vs-cold floor. At n>=4096 the splice wins >=2x (the ISSUE's
#: acceptance bar); the QUICK instance is 8x smaller, where per-batch
#: fixed costs (tree repair, store bookkeeping) eat into the margin.
MIN_SPEEDUP = 1.2 if QUICK else 2.0


def _cold_oracle(graph):
    """Full pipeline from an empty store — reference AND baseline."""
    result, _run = run_sensitivity(graph, engine="local",
                                   oracle_labels=True,
                                   store=ArtifactStore())
    return SensitivityOracle.from_result(graph, result)


def _assert_identical(a, b, where):
    for field in ("w", "tree_mask", "threshold", "sens", "cover_edge"):
        got, want = getattr(a, field), getattr(b, field)
        assert np.array_equal(got, want), (
            f"scoped oracle diverges from cold rebuild ({where}: {field})")


def _heavy_ops(graph, k, salt):
    hi = float(graph.w.max())
    ops = []
    for j in range(k):
        u = (j * 13 + salt) % graph.n
        v = (j * 7 + salt + 1) % graph.n
        if u == v:
            v = (v + 1) % graph.n
        ops.append({"kind": "add", "u": u, "v": v, "weight": hi + 1 + j})
    return ops


def _apply_and_check(up, ops, scoped_expected=True):
    """One batch through the streaming write path + cold cross-check."""
    rep = up.apply_batch(ops)
    assert rep.action == "rebuilt", rep.rejected_ops
    assert rep.scoped == scoped_expected, (
        f"batch classified scoped={rep.scoped}, expected {scoped_expected}")
    if scoped_expected:
        assert rep.stages_spliced == 5
    t0 = time.perf_counter()
    cold = _cold_oracle(up.graph)
    cold_s = time.perf_counter() - t0
    _assert_identical(up.oracle, cold, f"gen {rep.generation}")
    return rep, cold_s


def _sweep():
    g, _ = known_mst_instance("random", N, extra_m=EXTRA_M, rng=23)
    up = InstanceUpdater.build("stream", g)
    rows = []
    scoped_s = cold_s = 0.0
    batches = 0
    for cycle in range(CYCLES):
        rep, c = _apply_and_check(up, _heavy_ops(up.graph, K, salt=17 * cycle))
        rows.append((cycle, "add", K, "yes", rep.stages_spliced,
                     round(rep.wall_s, 4), round(c, 4),
                     round(c / rep.wall_s, 2)))
        scoped_s += rep.wall_s
        cold_s += c
        added = list(rep.added_ids)
        rep, c = _apply_and_check(
            up, [{"kind": "remove", "edge": e} for e in added])
        rows.append((cycle, "remove", K, "yes", rep.stages_spliced,
                     round(rep.wall_s, 4), round(c, 4),
                     round(c / rep.wall_s, 2)))
        scoped_s += rep.wall_s
        cold_s += c
        batches += 2

    # control: a tree-affecting batch takes the honest full path — it
    # must stay bit-identical too, but is excluded from the timing
    rep, _ = _apply_and_check(
        up, [{"kind": "add", "u": 0, "v": N // 2,
              "weight": float(up.graph.w.min()) / 2}],
        scoped_expected=False)
    rows.append(("-", "tree-affecting (control)", 1, "no",
                 rep.stages_spliced, round(rep.wall_s, 4), "-", "-"))

    stats = {
        "batches": batches,
        "scoped_wall_s": scoped_s,
        "cold_wall_s": cold_s,
        "speedup": cold_s / scoped_s if scoped_s else 0.0,
        "generations": up.generation,
        "m_final": up.graph.m,
    }
    return rows, stats


def _check(stats):
    assert stats["generations"] == stats["batches"] + 1  # one swap each
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"scoped incremental rebuild {stats['speedup']:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x floor at n={N} "
        f"(scoped {stats['scoped_wall_s']:.3f}s, "
        f"cold {stats['cold_wall_s']:.3f}s)")


HEADERS = ["cycle", "batch", "ops", "scoped", "spliced stages",
           "apply (s)", "cold rebuild (s)", "speedup"]


def test_e17_table(table_sink, benchmark):
    with timed() as t:
        rows, stats = _sweep()
    emit_json(
        "E17",
        {"n": N, "extra_m": EXTRA_M, "ops_per_batch": K,
         "cycles": CYCLES, "min_speedup": MIN_SPEEDUP},
        HEADERS, rows, wall_s=t.wall_s,
        scoped_wall_s=round(stats["scoped_wall_s"], 4),
        cold_wall_s=round(stats["cold_wall_s"], 4),
        speedup=round(stats["speedup"], 3),
        generations=stats["generations"],
    )
    _check(stats)

    def _bench_round():
        gb, _ = known_mst_instance("random", min(N, 1024),
                                   extra_m=4 * min(N, 1024), rng=29)
        upb = InstanceUpdater.build("bench", gb)
        rep = upb.apply_batch(_heavy_ops(upb.graph, K, salt=3))
        assert rep.scoped

    benchmark.pedantic(_bench_round, rounds=1, iterations=1)
    table_sink(
        f"E17: streaming churn, {stats['batches']} scoped batches of "
        f"{K} ops (n={N}, extra_m={EXTRA_M}; scoped "
        f"{stats['scoped_wall_s']:.3f}s vs cold "
        f"{stats['cold_wall_s']:.3f}s = {stats['speedup']:.2f}x, "
        f"floor {MIN_SPEEDUP:.1f}x; bit-identical after every batch)",
        render_table(HEADERS, rows),
    )


if __name__ == "__main__":
    t0 = time.perf_counter()
    rows, stats = _sweep()
    print(render_table(HEADERS, rows))
    print(f"speedup {stats['speedup']:.2f}x "
          f"(scoped {stats['scoped_wall_s']:.3f}s, "
          f"cold {stats['cold_wall_s']:.3f}s) "
          f"in {time.perf_counter() - t0:.1f}s total")
    _check(stats)
