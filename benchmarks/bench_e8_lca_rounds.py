"""E8 — Theorem 2.15: all-edges LCA in O(log D_T) rounds, linear memory.

Sweep D_T at fixed n and query-edge count; report rounds of the LCA
phase alone (clustering + climb + unwind) and verify against the
binary-lifting oracle.
"""

import numpy as np
import pytest

from repro.analysis import fit_log, render_table
from repro.core.hierarchy import build_hierarchy
from repro.core.lca import all_edges_lca
from repro.graph.generators import backbone_tree
from repro.mpc import LocalRuntime

from common import QUICK, emit_json, scaled, timed

N = scaled(4096)
N_QUERIES = scaled(8192)
DIAMS = (8, 32, 128) if QUICK else (8, 32, 128, 512, 2048)
HEADERS = ["D_T", "clustering rounds", "LCA rounds", "total", "peak words"]


def _run(d, seed=0):
    tree = backbone_tree(N, d, rng=seed + d)
    rng = np.random.default_rng(seed + 1)
    eu = rng.integers(0, N, N_QUERIES)
    ev = rng.integers(0, N - 1, N_QUERIES)
    ev = np.where(ev >= eu, ev + 1, ev)
    rt = LocalRuntime()
    _, low, high = tree.euler_intervals()
    h = build_hierarchy(rt, tree.parent, np.zeros(N), tree.root, low, high, d)
    cluster_rounds = rt.rounds
    got = all_edges_lca(rt, h, low, high, eu, ev, d)
    lca_rounds = rt.rounds - cluster_rounds
    assert np.array_equal(got, tree.lca(eu, ev))
    return cluster_rounds, lca_rounds, rt.tracker.peak_global_words


def _sweep():
    rows = []
    for d in DIAMS:
        c, l, words = _run(d)
        rows.append((d, c, l, c + l, words))
    return rows


def test_e8_table(table_sink, benchmark):
    with timed() as t:
        rows = _sweep()
    benchmark.pedantic(lambda: _run(DIAMS[2]), rounds=3, iterations=1)
    total = [r[3] for r in rows]
    fit = fit_log(DIAMS, total)
    emit_json(
        "E8", {"n": N, "n_queries": N_QUERIES, "diameters": list(DIAMS)},
        HEADERS, rows, wall_s=t.wall_s,
        fit={"slope": fit.slope, "intercept": fit.intercept, "r2": fit.r2},
    )
    table_sink(
        f"E8: all-edges LCA rounds vs D_T (n={N}, {N_QUERIES} query "
        f"edges; fit {fit.slope:.1f}*log2(D){fit.intercept:+.1f}, "
        f"R2={fit.r2:.3f})",
        render_table(HEADERS, rows),
    )
    assert fit.r2 > 0.9
    words = [r[4] for r in rows]
    assert max(words) <= 4 * min(words)  # linear memory across the sweep
