"""E14 — planner/executor split: eager vs planned wall clock.

Both executions run the identical logical plan (same charged rounds,
same outputs — the differential suite asserts bit-identity), so this
experiment isolates exactly what the physical optimizer buys: elided
sorts, reduce→join fusion, direct-address join kernels and shared
address tables, versus the eager engines' per-call scans and binary
searches.

The sweep covers verify+sensitivity across three graph families on the
local engine (where the full rewrite rule set applies) plus a small
distributed row (record-mode planning: full protocols, so the ratio
should sit near 1x — it documents that the message-level engine's
transport schedule is untouched).

Acceptance gate: on the local engine at n >= GATE_MIN_N, the aggregate
(summed across families) verify+sensitivity wall speedup must reach
``MIN_SPEEDUP``; recorded in ``BENCH_E14.json``.
"""

import time

import numpy as np

from repro.analysis import render_table
from repro.core.sensitivity import mst_sensitivity
from repro.core.verification import verify_mst
from repro.mpc import MPCConfig

try:  # direct `python benchmarks/bench_e14_...py` runs (CI gate step)
    from common import QUICK, emit_json, shape_instance, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, shape_instance, timed

#: Local-engine wall-speedup floor at the gate sizes. Measured dev-box
#: aggregates sit around 1.35-1.55x; the floor leaves noise headroom on
#: shared CI runners while still failing if a headline rewrite (the
#: direct-address join selection above all) silently stops firing.
MIN_SPEEDUP = 1.3

#: The planner's win grows with n (python per-node overhead amortises,
#: binary searches get deeper); the paper gate applies from here up.
GATE_MIN_N = 4096

FAMILIES = ("random", "grid", "power_law")
SIZES = (1024, 4096) if QUICK else (1024, 4096, 8192)
GATE_SIZES = tuple(n for n in SIZES if n >= GATE_MIN_N)
REPS = 2 if QUICK else 3

HEADERS = ["engine", "family", "n", "rounds", "eager wall (s)",
           "planned wall (s)", "speedup x"]


def _run_pair(g, engine: str, reps: int, **cfg_kw):
    """Best-of-``reps`` verify+sensitivity wall for eager and planned."""
    walls = {}
    results = {}
    for planner in (False, True):
        cfg = MPCConfig(planner=planner, **cfg_kw)
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            rv = verify_mst(g, engine=engine, config=cfg)
            rs = mst_sensitivity(g, engine=engine,
                                 config=MPCConfig(planner=planner, **cfg_kw))
            best = min(best, time.perf_counter() - t0)
        walls[planner] = best
        results[planner] = (rv, rs)
    (rv_e, rs_e), (rv_p, rs_p) = results[False], results[True]
    assert np.array_equal(rs_e.sensitivity, rs_p.sensitivity)
    assert np.array_equal(rv_e.pathmax, rv_p.pathmax)
    assert rs_e.report.to_dict() == rs_p.report.to_dict()
    return walls[False], walls[True], rs_p.rounds


def _sweep():
    rows = []
    agg = {}  # n -> [eager_total, planned_total] on the local engine
    for n in SIZES:
        for family in FAMILIES:
            g = shape_instance(family, n, seed=3)
            eager, planned, rounds = _run_pair(g, "local", REPS)
            e, p = agg.setdefault(n, [0.0, 0.0])
            agg[n] = [e + eager, p + planned]
            rows.append(("local", family, n, rounds, round(eager, 3),
                         round(planned, 3), round(eager / planned, 2)))
    # one distributed row: record-mode planning must cost ~nothing and
    # change nothing (full protocols run either way)
    n_dist = 256
    g = shape_instance("random", n_dist, seed=3)
    eager, planned, rounds = _run_pair(g, "distributed", 1, delta=0.6)
    rows.append(("distributed", "random", n_dist, rounds, round(eager, 3),
                 round(planned, 3), round(eager / planned, 2)))
    speedups = {n: e / p for n, (e, p) in agg.items()}
    return rows, speedups


def _gate(speedups):
    worst = min(speedups[n] for n in GATE_SIZES)
    return worst >= MIN_SPEEDUP, worst


def test_e14_table(table_sink, benchmark):
    with timed() as t:
        rows, speedups = _sweep()
    g = shape_instance("random", SIZES[0], seed=3)
    benchmark.pedantic(
        lambda: mst_sensitivity(g, engine="local", config=MPCConfig()),
        rounds=2, iterations=1,
    )
    emit_json("E14", {"sizes": list(SIZES), "families": list(FAMILIES),
                      "gate_sizes": list(GATE_SIZES),
                      "min_speedup": MIN_SPEEDUP, "reps": REPS},
              HEADERS, rows, wall_s=t.wall_s,
              agg_speedups={str(n): round(s, 3)
                            for n, s in speedups.items()})
    table_sink(
        "E14: planner speedup, eager vs planned execution "
        "(verify+sensitivity, bit-identical outputs asserted)",
        render_table(HEADERS, rows),
    )
    ok, worst = _gate(speedups)
    assert ok, (
        f"planned/eager speedup {worst:.2f}x at n>={GATE_MIN_N} is below "
        f"the {MIN_SPEEDUP}x floor — a planner rewrite stopped firing"
    )


if __name__ == "__main__":
    rows, speedups = _sweep()
    print(render_table(HEADERS, rows))
    ok, worst = _gate(speedups)
    print(f"speedup gate ({MIN_SPEEDUP}x floor at n>={GATE_MIN_N}): "
          f"worst {worst:.2f}x -> {'PASS' if ok else 'FAIL'}")
    raise SystemExit(0 if ok else 1)
