"""E10 — ablations of the clustering design choices (DESIGN.md §5).

(a) contraction target exponent: contracting to n/D^x trades clustering
    rounds against per-cluster memory for the path-collection stage;
(b) head/tail coin bias: p(contract) = bias*(1-bias) is maximised at
    1/2 — skewed coins need more steps for the same target.
"""

import pytest

from repro.analysis import render_table
from repro.core.verification import verify_mst
from repro.pipeline import ArtifactStore

from common import QUICK, diameter_instance, emit_json, scaled, timed

N = scaled(4096)
D = 32 if QUICK else 128

#: Both sweeps vary only clustering knobs, so they share one artifact
#: store: the substrate prefix runs once and is replayed ever after
#: (bit-identical results and charged rounds — see E12 / DESIGN.md §4).
STORE = ArtifactStore()


def _exponent_sweep():
    rows = []
    for ex in (0.5, 1.0, 1.5, 2.0):
        g = diameter_instance(N, D)
        r = verify_mst(g, oracle_labels=True, reduction_exponent=ex,
                       store=STORE)
        assert r.is_mst
        rows.append((
            ex, len(r.cluster_counts) - 1, r.cluster_counts[-1],
            r.core_rounds, r.report.peak_global_words,
        ))
    return rows


def _bias_sweep():
    rows = []
    for bias in (0.1, 0.3, 0.5, 0.7, 0.9):
        g = diameter_instance(N, D)
        r = verify_mst(g, oracle_labels=True, coin_bias=bias, store=STORE)
        assert r.is_mst
        rows.append((bias, len(r.cluster_counts) - 1, r.core_rounds))
    return rows


def test_e10_exponent(table_sink, benchmark):
    with timed() as t:
        rows = _exponent_sweep()
    emit_json(
        "E10", {"n": N, "d": D, "exponents": [r[0] for r in rows]},
        ["exponent", "steps", "final clusters", "core rounds", "peak words"],
        rows, wall_s=t.wall_s,
    )
    g = diameter_instance(N, D)
    benchmark.pedantic(
        lambda: verify_mst(g, oracle_labels=True, reduction_exponent=1.0),
        rounds=3, iterations=1,
    )
    table_sink(
        f"E10a: contraction target exponent (n={N}, D_T={D}; "
        "target = n/D^x)",
        render_table(
            ["exponent", "steps", "final clusters", "core rounds",
             "peak words"],
            rows,
        ),
    )
    # stronger contraction -> fewer clusters, more steps
    assert rows[0][2] >= rows[-1][2]
    assert rows[0][1] <= rows[-1][1]


def test_e10_bias(table_sink, benchmark):
    rows = benchmark.pedantic(_bias_sweep, rounds=1, iterations=1)
    table_sink(
        f"E10b: head/tail coin bias (n={N}, D_T={D})",
        render_table(["bias", "steps", "core rounds"], rows),
    )
    steps = {bias: s for bias, s, _ in rows}
    # extreme biases should not beat the balanced coin
    assert steps[0.5] <= steps[0.1]
    assert steps[0.5] <= steps[0.9]
