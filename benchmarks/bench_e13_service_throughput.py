"""E13 — service throughput: micro-batching, shards, update path.

The serving claim behind the S19 layer: point queries dispatched
through micro-batches amortise the per-dispatch cost into the oracle's
vectorised bulk kernels, so the *same* shard pool serves a multiple of
the batch-size-1 throughput — answers bit-identical in both modes. The
workload mixes three instance families (random / grid / power_law)
behind one service, driven by pipelined in-process clients.

Acceptance bars:

* batched throughput >= 5x batch-size-1 on the same shard count
  (relaxed to 2x under ``REPRO_BENCH_QUICK`` — shared CI runners make
  wall-clock ratios noisy at smoke sizes);
* an oracle-preserving weight update completes with ZERO pipeline
  stages (and zero verification-stage re-runs);
* a structure-changing update rebuilds incrementally: the six
  weight-blind stages (validate→lca) replay from the artifact cache,
  only the weight-reading suffix re-runs.
"""

import asyncio
import time

import numpy as np

from repro.analysis import render_table
from repro.graph.generators import known_mst_instance
from repro.service import SensitivityService, ServiceConfig
from repro.service.loadgen import make_plan, run_inprocess

try:  # direct `python benchmarks/bench_e13_...py` runs
    from common import QUICK, emit_json, scaled, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import os
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, scaled, timed

N = scaled(2048)
EXTRA_M = 2 * N
SHAPES = ("random", "grid", "power_law")
TOTAL_QUERIES = 30_000 if QUICK else 120_000
CLIENTS = 6
PIPELINE_DEPTH = 512
SHARDS = 2

#: Acceptance floor for the micro-batching throughput multiple.
MIN_SPEEDUP = 2.0 if QUICK else 5.0


def _build_service(max_batch, window_s):
    cfg = ServiceConfig(shards=SHARDS, max_batch=max_batch,
                        batch_window_s=window_s, queue_depth=1 << 15)
    svc = SensitivityService(cfg)
    for i, shape in enumerate(SHAPES):
        g, _ = known_mst_instance(shape, N, extra_m=EXTRA_M, rng=31 + i)
        svc.add_instance(shape, g)
    return svc


async def _throughput(max_batch, window_s, plan):
    svc = _build_service(max_batch, window_s)
    await svc.start()
    stats = await run_inprocess(svc, plan, clients=CLIENTS,
                                pipeline=PIPELINE_DEPTH)
    metrics = svc.metrics()
    await svc.stop()
    assert stats.errors == 0 and stats.shed == 0
    assert stats.answered == len(plan)
    return stats, metrics


async def _update_path():
    """Drive both write-path classes; return their reports."""
    svc = _build_service(512, 0.001)
    await svc.start()
    inst = svc.instances["random"]
    oracle = inst.updater.oracle
    graph = inst.updater.graph
    cover = oracle.covering_edges()
    preserving_e = int(np.flatnonzero(~graph.tree_mask & ~cover)[0])
    changing_e = int(np.flatnonzero(~graph.tree_mask & cover)[0])
    rep_a = await svc.update(preserving_e,
                             float(graph.w[preserving_e]) + 1.0,
                             instance="random")
    rep_b = await svc.update(changing_e,
                             float(graph.w[changing_e]) + 2.0,
                             instance="random")
    # sample identity: the swapped-in oracle answers match a fresh build
    sample = await svc.query("sensitivity", changing_e, instance="random")
    await svc.stop()
    assert sample["ok"] and sample["generation"] == 1
    return rep_a, rep_b


def _sweep():
    instances = {}
    for i, shape in enumerate(SHAPES):
        g, _ = known_mst_instance(shape, N, extra_m=EXTRA_M, rng=31 + i)
        instances[shape] = g.m
    plan = make_plan(instances, TOTAL_QUERIES, seed=7)

    point_stats, point_metrics = asyncio.run(_throughput(1, 0.0, plan))
    batch_stats, batch_metrics = asyncio.run(_throughput(512, 0.001, plan))
    rep_a, rep_b = asyncio.run(_update_path())

    speedup = batch_stats.qps / point_stats.qps

    def occupancy(metrics):
        snaps = [s for inst in metrics["instances"].values()
                 for s in inst["shards"]]
        q = sum(s["queries"] for s in snaps)
        b = sum(s["batches"] for s in snaps)
        return q / b if b else 0.0

    rows = [
        ("batch-size-1", 1, TOTAL_QUERIES,
         round(point_stats.wall_s, 3), f"{point_stats.qps:,.0f}",
         round(occupancy(point_metrics), 1)),
        ("micro-batched", 512, TOTAL_QUERIES,
         round(batch_stats.wall_s, 3), f"{batch_stats.qps:,.0f}",
         round(occupancy(batch_metrics), 1)),
        ("update: preserving", "-", 1, round(rep_a["wall_s"], 4),
         f"stages {rep_a['stages_executed']}", "-"),
        ("update: rebuild", "-", 1, round(rep_b["wall_s"], 4),
         f"stages {rep_b['stages_executed']} "
         f"(cached {rep_b['stages_cached']})", "-"),
    ]
    stats = {
        "point_qps": point_stats.qps,
        "batched_qps": batch_stats.qps,
        "speedup": speedup,
        "preserving_update": rep_a,
        "rebuild_update": rep_b,
    }
    return rows, stats


def _check(stats):
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"micro-batching speedup {stats['speedup']:.2f}x below "
        f"{MIN_SPEEDUP}x (point {stats['point_qps']:,.0f} qps, "
        f"batched {stats['batched_qps']:,.0f} qps)"
    )
    a = stats["preserving_update"]
    assert a["action"] == "patched"
    assert a["stages_executed"] == 0, a
    assert a["verification_reruns"] == 0, a
    b = stats["rebuild_update"]
    assert b["action"] == "rebuilt"
    assert b["stages_cached"] == 6, b      # validate→lca replayed
    assert b["stages_executed"] == 8, b    # weight-reading suffix only
    assert b["verification_reruns"] == 4, b


HEADERS = ["mode", "max batch", "ops", "wall (s)", "throughput",
           "batch occupancy"]


def test_e13_table(table_sink, benchmark):
    with timed() as t:
        rows, stats = _sweep()
    emit_json(
        "E13",
        {"n": N, "extra_m": EXTRA_M, "shapes": list(SHAPES),
         "queries": TOTAL_QUERIES, "shards": SHARDS,
         "clients": CLIENTS, "pipeline_depth": PIPELINE_DEPTH},
        HEADERS, rows, wall_s=t.wall_s,
        point_qps=stats["point_qps"], batched_qps=stats["batched_qps"],
        speedup=round(stats["speedup"], 2),
        preserving_update=stats["preserving_update"],
        rebuild_update=stats["rebuild_update"],
    )
    _check(stats)

    async def _bench_round():
        instances = {s: N - 1 + EXTRA_M for s in SHAPES}
        plan = make_plan(instances, 20_000, seed=9)
        await _throughput(512, 0.001, plan)

    benchmark.pedantic(lambda: asyncio.run(_bench_round()),
                       rounds=1, iterations=1)
    table_sink(
        f"E13: service throughput, {len(SHAPES)} instances x {SHARDS} "
        f"shards (n={N}, {TOTAL_QUERIES:,} mixed queries; micro-batching "
        f"{stats['speedup']:.1f}x over batch-size-1)",
        render_table(HEADERS, rows),
    )


if __name__ == "__main__":
    t0 = time.perf_counter()
    rows, stats = _sweep()
    print(render_table(HEADERS, rows))
    print(f"speedup {stats['speedup']:.2f}x "
          f"(floor {MIN_SPEEDUP}x), wall {time.perf_counter() - t0:.1f}s")
    _check(stats)
    print("PASS")
