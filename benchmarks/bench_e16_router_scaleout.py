"""E16 — router scale-out: N worker processes behind one front door.

The horizontal-scaling claim behind the S22 router tier: the same
instance mix served by the single-process S19 service (the E13
configuration, over TCP) scales across worker *processes* — placement
by rendezvous hashing, reads fanned over replicas, one oracle build
shipped to every replica as a digest-addressed mmap snapshot — while a
structure-changing update lands mid-storm as a zero-downtime
generation swap.

Acceptance bars:

* bit-identity **pre-timing**: the router fleet answers exactly what
  the single-process service answers (generation 0), and after the
  mid-storm rebuild exactly what a locally rebuilt oracle answers
  (generation 1);
* aggregate router throughput >= ``min(4, cores/2)``x the
  single-process baseline on the same instance mix (the floor self-
  scales: on a 1-core runner the fleet can't beat the GIL, it must
  merely stay within 2x of the baseline; on >= 8 cores it must win
  4x), relaxed by 0.6 under ``REPRO_BENCH_QUICK`` for shared runners;
* the live update completes with ZERO failed queries — nothing sheds
  or errors because of the swap;
* the swap is *shipped*, not recomputed: the router's
  ``swaps_shipped`` counter equals replicas - 1 and the workers report
  matching generations.
"""

import asyncio
import os
import time

from repro.analysis import render_table
from repro.graph.generators import known_mst_instance
from repro.oracle import build_oracle
from repro.service import (
    InstanceUpdater,
    RouterConfig,
    RouterTier,
    SensitivityService,
    ServiceConfig,
)
from repro.service.loadgen import make_plan, run_tcp

try:  # direct `python benchmarks/bench_e16_...py` runs
    from common import QUICK, emit_json, scaled, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, scaled, timed

N = scaled(1024)
EXTRA_M = 2 * N
SHAPES = ("random", "power_law")
TOTAL_QUERIES = 8_000 if QUICK else 40_000
CLIENTS = 4
PIPELINE_DEPTH = 64
SHARDS = 2
CORES = os.cpu_count() or 1
WORKERS = max(2, min(4, CORES))
IDENTITY_STRIDE = 17  # every 17th edge is probed for bit-identity

#: Acceptance floor for aggregate scale-out vs the single process.
FLOOR = min(4.0, CORES / 2)
if QUICK:
    FLOOR *= 0.6


def _graphs():
    out = {}
    for i, shape in enumerate(SHAPES):
        g, _ = known_mst_instance(shape, N, extra_m=EXTRA_M, rng=31 + i)
        out[shape] = g
    return out


async def _probe(host, port, edges_by_instance):
    """One serial connection reading sensitivity answers + generations."""
    reader, writer = await asyncio.open_connection(host, port)
    out = {}
    try:
        import json

        for name, edges in edges_by_instance.items():
            for e in edges:
                writer.write((json.dumps(
                    {"op": "sensitivity", "instance": name,
                     "edge": int(e)}) + "\n").encode())
                await writer.drain()
                resp = json.loads(await reader.readline())
                assert resp["ok"], resp
                out[(name, int(e))] = (resp["result"], resp["generation"])
    finally:
        writer.close()
    return out


async def _baseline(graphs, plan):
    """Single-process S19 service over TCP — the E13 configuration."""
    svc = SensitivityService(ServiceConfig(
        shards=SHARDS, max_batch=512, batch_window_s=0.001,
        queue_depth=1 << 15, port=0))
    for shape, g in graphs.items():
        svc.add_instance(shape, g)
    await svc.start(serve_tcp=True)
    host, port = svc.tcp_address
    edges = {s: range(0, g.m, IDENTITY_STRIDE) for s, g in graphs.items()}
    answers = await _probe(host, port, edges)
    stats = await run_tcp(host, port, plan, clients=CLIENTS,
                          pipeline=PIPELINE_DEPTH)
    await svc.stop()
    assert stats.errors == 0, "baseline run must be clean"
    return stats, answers


async def _scaleout(graphs, plan, expected0, upd_edge, expected1):
    """Router + WORKERS processes: identity, storm + live swap, counters."""
    rt = RouterTier(RouterConfig(
        workers=WORKERS, replication=2, shards=SHARDS, max_batch=512,
        batch_window_s=0.001, queue_depth=1 << 15, port=0))
    await rt.start(serve_tcp=True)
    swap_report = {}
    try:
        for shape, g in graphs.items():
            await rt.add_instance(shape, g)
        host, port = rt.tcp_address

        # bit-identity, pre-timing: the fleet IS the baseline service
        edges = {s: range(0, g.m, IDENTITY_STRIDE)
                 for s, g in graphs.items()}
        answers = await _probe(host, port, edges)
        assert answers == expected0, (
            "router fleet answers diverge from the single-process "
            "service at generation 0")

        async def storm():
            return await run_tcp(host, port, plan, clients=CLIENTS,
                                 pipeline=PIPELINE_DEPTH)

        async def live_swap():
            await asyncio.sleep(0.1)
            t0 = time.perf_counter()
            resp = await rt.update({"op": "update", "instance": "random",
                                    "edge": upd_edge, "weight": 1e-6})
            swap_report.update(resp, wall_s=time.perf_counter() - t0)
            return resp

        stats, upd = await asyncio.gather(storm(), live_swap())
        assert stats.errors == 0, (
            f"{stats.errors} queries failed across the generation swap")
        assert upd["action"] == "rebuilt" and upd["generation"] == 1
        assert all(s["ok"] for s in upd["shipped_to"])

        # bit-identity after the swap, against a local rebuild
        post = await _probe(
            host, port, {"random": range(0, graphs["random"].m,
                                         IDENTITY_STRIDE)})
        for (name, e), (val, gen) in post.items():
            assert gen == 1, f"{name}#{e} still serving generation {gen}"
            assert val == expected1[e], f"gen-1 divergence at edge {e}"

        metrics = await rt.router_metrics()
    finally:
        await rt.stop()
    return stats, metrics, swap_report


def _sweep():
    graphs = _graphs()
    plan = make_plan({s: g.m for s, g in graphs.items()},
                     TOTAL_QUERIES, seed=7)

    base_stats, expected0 = asyncio.run(_baseline(graphs, plan))

    # pick the rebuild-forcing update and its ground truth up front
    g = graphs["random"]
    ref0 = build_oracle(g)
    upd_edge = next(e for e in range(g.m_tree)
                    if InstanceUpdater("probe", g, ref0).classify(e, 1e-6)
                    == "rebuilt")
    g2 = g.copy()
    g2.w[upd_edge] = 1e-6
    expected1 = [float(x) for x in build_oracle(g2).sens]

    scale_stats, metrics, swap = asyncio.run(
        _scaleout(graphs, plan, expected0, upd_edge, expected1))

    speedup = scale_stats.qps / base_stats.qps if base_stats.qps else 0.0
    r = metrics["router"]
    rows = [
        ("single process (E13 cfg)", 1, TOTAL_QUERIES,
         round(base_stats.wall_s, 3), f"{base_stats.qps:,.0f}", "-", "-"),
        (f"router x {WORKERS} workers", WORKERS, TOTAL_QUERIES,
         round(scale_stats.wall_s, 3), f"{scale_stats.qps:,.0f}",
         r["replica_hits"], r["swaps_shipped"]),
        ("live swap (rebuild + ship)", "-", 1,
         round(swap.get("wall_s", 0.0), 3), "-", "-",
         swap.get("snapshot_digest", "")[:16]),
    ]
    stats = {
        "baseline_qps": base_stats.qps,
        "scaleout_qps": scale_stats.qps,
        "speedup": speedup,
        "router": r,
        "swap_generation": swap.get("generation"),
        "swap_wall_s": swap.get("wall_s"),
        "storm_errors": scale_stats.errors,
        "storm_shed": scale_stats.shed,
    }
    return rows, stats


def _check(stats):
    assert stats["storm_errors"] == 0
    assert stats["swap_generation"] == 1
    assert stats["router"]["swaps_shipped"] == 1  # replication 2: 1 ship
    assert stats["router"]["shed_router"] == 0, (
        "router shed during the storm — swap-attributable backpressure")
    assert stats["speedup"] >= FLOOR, (
        f"scale-out {stats['speedup']:.2f}x below the "
        f"min(4, cores/2) floor {FLOOR:.2f}x on {CORES} core(s) "
        f"(baseline {stats['baseline_qps']:,.0f} qps, "
        f"fleet {stats['scaleout_qps']:,.0f} qps)"
    )


HEADERS = ["mode", "workers", "queries", "wall (s)", "throughput",
           "replica hits", "swaps shipped"]


def test_e16_table(table_sink, benchmark):
    with timed() as t:
        rows, stats = _sweep()
    emit_json(
        "E16",
        {"n": N, "extra_m": EXTRA_M, "shapes": list(SHAPES),
         "queries": TOTAL_QUERIES, "shards": SHARDS, "workers": WORKERS,
         "clients": CLIENTS, "pipeline_depth": PIPELINE_DEPTH,
         "cores": CORES, "floor": round(FLOOR, 2)},
        HEADERS, rows, wall_s=t.wall_s,
        baseline_qps=stats["baseline_qps"],
        scaleout_qps=stats["scaleout_qps"],
        speedup=round(stats["speedup"], 3),
        swap_wall_s=round(stats["swap_wall_s"], 4),
        router=stats["router"],
    )
    _check(stats)
    table_sink(
        f"E16: router scale-out, {WORKERS} workers x {SHARDS} shards "
        f"(n={N}, {TOTAL_QUERIES:,} queries; {stats['speedup']:.2f}x "
        f"single-process, floor {FLOOR:.2f}x on {CORES} cores; "
        f"live swap in {stats['swap_wall_s']:.3f}s, 0 failed queries)",
        render_table(HEADERS, rows),
    )


if __name__ == "__main__":
    t0 = time.perf_counter()
    rows, stats = _sweep()
    print(render_table(HEADERS, rows))
    print(f"scale-out {stats['speedup']:.2f}x (floor {FLOOR:.2f}x on "
          f"{CORES} cores), swap {stats['swap_wall_s']:.3f}s, "
          f"wall {time.perf_counter() - t0:.1f}s")
    _check(stats)
    print("PASS")
