#!/usr/bin/env python
"""Run the whole benchmark suite and collect the BENCH_E*.json results.

Wraps ``pytest benchmarks/`` so one command reproduces every experiment
and leaves the machine-readable perf trajectory in
``benchmarks/results/`` (override with ``--out-dir`` or the
``REPRO_BENCH_RESULTS`` env var). ``--quick`` shrinks every sweep for
CI smoke runs (sets ``REPRO_BENCH_QUICK=1``).

Examples::

    python benchmarks/run_all.py                 # full suite
    python benchmarks/run_all.py --quick         # CI smoke
    python benchmarks/run_all.py --only e12      # one experiment
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="shrink sweeps for a fast smoke run")
    ap.add_argument("--only", type=str, default=None, metavar="EXPR",
                    help="pytest -k filter, e.g. 'e12' or 'e1 or e4'")
    ap.add_argument("--out-dir", type=str, default=None, metavar="DIR",
                    help="where BENCH_E*.json land (default "
                         "benchmarks/results)")
    ap.add_argument("--benchmark-timings", action="store_true",
                    help="also run pytest-benchmark timings (slower)")
    args = ap.parse_args(argv)

    env = os.environ.copy()
    if args.quick:
        env["REPRO_BENCH_QUICK"] = "1"
    out_dir = args.out_dir or os.path.join(BENCH_DIR, "results")
    env["REPRO_BENCH_RESULTS"] = out_dir
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    # bench modules don't match pytest's test_*.py discovery pattern, so
    # pass them explicitly (same as the documented bench_*.py glob)
    bench_files = sorted(glob.glob(os.path.join(BENCH_DIR, "bench_e*.py")))
    cmd = [sys.executable, "-m", "pytest", *bench_files, "-q"]
    cmd.append("--benchmark-only" if args.benchmark_timings
               else "--benchmark-disable")
    if args.only:
        cmd += ["-k", args.only]
    t0 = time.time()
    rc = subprocess.call(cmd, env=env)

    # only count files this invocation (re)wrote — out_dir may hold
    # stale results from earlier runs
    produced = sorted(
        p for p in glob.glob(os.path.join(out_dir, "BENCH_*.json"))
        if os.path.getmtime(p) >= t0 - 1
    )
    if produced:
        print(f"\n{len(produced)} result files in {out_dir}:")
        for path in produced:
            with open(path) as fh:
                payload = json.load(fh)
            wall = payload.get("wall_s")
            wall_str = f"{wall:8.2f}s" if wall is not None else "       -"
            print(f"  {os.path.basename(path):20s} {wall_str}  "
                  f"rows={len(payload.get('rows', []))} "
                  f"quick={payload.get('quick')}")
    else:
        print(f"no BENCH_*.json produced in {out_dir}", file=sys.stderr)
        rc = rc or 1
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
