"""E7 — Lemma 2.8 / Corollary 3.6 / Observation 2.10 / Lemma 4.6.

Cluster count decays geometrically per contraction step; total merge
records stay O(n); sensitivity notes stay O(n). One row per contraction
step of a representative build plus summary columns across shapes.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core.hierarchy import build_hierarchy
from repro.core.sensitivity import mst_sensitivity
from repro.graph.generators import tree_instance
from repro.mpc import LocalRuntime

from common import emit_json, scaled, shape_instance, timed

SHAPES = ("path", "binary", "caterpillar", "random")
N = scaled(4096)


def _decay_curve():
    t = tree_instance("caterpillar", N, 1)
    rt = LocalRuntime()
    _, low, high = t.euler_intervals()
    d = max(1, t.diameter())
    h = build_hierarchy(rt, t.parent, np.zeros(N), t.root, low, high, d)
    rows = []
    for step, c in enumerate(h.counts):
        prev = h.counts[step - 1] if step else c
        rows.append((step, c, round(c / prev, 3) if step else 1.0))
    return rows, h


def _shape_summary():
    rows = []
    for shape in SHAPES:
        g = shape_instance(shape, N, seed=2)
        s = mst_sensitivity(g, oracle_labels=True)
        tm = g.tree_mask
        t = None
        from repro.graph.tree import RootedTree

        t = RootedTree.from_edges(g.n, g.u[tm], g.v[tm], g.w[tm], root=0)
        rt = LocalRuntime()
        _, low, high = t.euler_intervals()
        d = max(1, t.diameter())
        h = build_hierarchy(rt, t.parent, t.weight, t.root, low, high, d)
        rows.append((
            shape, d, len(h.counts) - 1, h.final_count, h.target,
            h.total_cluster_records(), s.notes_peak,
        ))
        assert h.total_cluster_records() <= N       # Observation 2.10
        assert s.notes_peak <= 6 * N                # Lemma 4.6/Claim 4.13
    return rows


def test_e7_decay_table(table_sink, benchmark):
    with timed() as t:
        rows, h = _decay_curve()
    benchmark.pedantic(_decay_curve, rounds=3, iterations=1)
    emit_json("E7", {"n": N, "shape": "caterpillar", "target": h.target},
              ["step", "clusters", "ratio vs prev"], rows, wall_s=t.wall_s)
    table_sink(
        f"E7a: cluster-count decay per contraction step "
        f"(caterpillar, n={N}, target={h.target})",
        render_table(["step", "clusters", "ratio vs prev"], rows),
    )
    # geometric decay overall: the full build shrinks by >= 10x
    assert rows[-1][1] <= max(1, N // 10)


def test_e7_shape_summary(table_sink, benchmark):
    rows = benchmark.pedantic(_shape_summary, rounds=1, iterations=1)
    table_sink(
        f"E7b: hierarchy/notes linearity across shapes (n={N})",
        render_table(
            ["shape", "D_T", "steps", "final clusters", "target",
             "merge records (O(n))", "notes peak (O(n))"],
            rows,
        ),
    )
