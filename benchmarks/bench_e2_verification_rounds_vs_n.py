"""E2 — Theorem 3.1: at fixed D_T, rounds are flat in n; the recompute
baseline grows with n.

Sweep: n in {1024..8192}, D_T = 16 fixed, path-shaped weights on the
baseline's worst shape so its Borůvka phases actually grow. Expected
shape: core rounds ~constant; baseline rounds increase with n.
"""

import pytest

from repro.analysis import render_table
from repro.baselines import mpc_boruvka
from repro.core.verification import verify_mst
from repro.graph.generators import attach_nontree_edges, path_tree
from repro.mpc import LocalRuntime

from common import N_SWEEP, diameter_instance, emit_json, timed

FIXED_D = 16
HEADERS = ["n", "core rounds (Thm 3.1)", "Boruvka rounds (path MST)",
           "Boruvka phases"]


def _sweep():
    rows = []
    for n in N_SWEEP:
        g = diameter_instance(n, FIXED_D)
        core = verify_mst(g, oracle_labels=True).core_rounds
        # baseline on its hard shape at the same n (path MST: pairwise merges)
        gp = attach_nontree_edges(path_tree(n), 2 * n, rng=1, mode="mst")
        rt = LocalRuntime()
        res = mpc_boruvka(rt, gp)
        rows.append((n, core, rt.rounds, res.phases))
    return rows


def test_e2_table(table_sink, benchmark):
    with timed() as t:
        rows = _sweep()
    g = diameter_instance(N_SWEEP[1], FIXED_D)
    benchmark.pedantic(
        lambda: verify_mst(g, oracle_labels=True), rounds=3, iterations=1
    )
    emit_json("E2", {"n_sweep": list(N_SWEEP), "fixed_d": FIXED_D},
              HEADERS, rows, wall_s=t.wall_s)
    table_sink(
        f"E2: rounds vs n at fixed D_T={FIXED_D}",
        render_table(HEADERS, rows),
    )
    core = [r[1] for r in rows]
    base = [r[2] for r in rows]
    # core flat in n (within 50%), baseline grows
    assert max(core) - min(core) <= 0.5 * min(core)
    assert base[-1] > base[0]
