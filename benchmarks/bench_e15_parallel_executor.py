"""E15 — process-parallel executor: workload partitions vs serial wall.

K independent seeded sensitivity instances are one workload; the serial
baseline runs them one after another in this process, the parallel run
ships each as a plan partition to the shared worker pool
(:func:`repro.mpc.parallel.run_partitions` — graph columns travel via
shared memory, every worker runs the full pipeline with its own logical
accounting). Outputs *and* the full CostReport dict of every partition
are asserted bit-identical to the serial run before any timing counts:
parallelism must never touch the cost stream.

Acceptance gate: wall speedup >= cores/2 (``os.cpu_count()``). On a
single-core runner that floor is 0.5x — i.e. process shipping may cost
at most 2x, documenting that the executor's overhead stays bounded even
where no parallelism is available; on multi-core hardware the same
formula demands real scaling. Recorded in ``BENCH_E15.json``.
"""

import os
import time

import numpy as np

from repro.analysis import render_table
from repro.core.sensitivity import mst_sensitivity
from repro.mpc import MPCConfig
from repro.mpc.parallel import get_pool, run_partitions

try:  # direct `python benchmarks/bench_e15_...py` runs (CI gate step)
    from common import QUICK, emit_json, scaled, shape_instance, timed
except ImportError:  # pragma: no cover - path set up by pytest otherwise
    import sys

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from common import QUICK, emit_json, scaled, shape_instance, timed

CORES = os.cpu_count() or 1

#: The paper-benchmark floor: half the cores' worth of scaling. Pool
#: dispatch, shm packing and result pickling must amortise inside one
#: pipeline run, so the floor also bounds per-partition overhead at 2x
#: when only one core exists.
MIN_SPEEDUP = CORES / 2

N = scaled(4096)
FAMILIES = ("random", "grid", "power_law")
#: Partitions per run: enough to keep every worker busy at least twice.
K = max(4, 2 * CORES)
REPS = 1 if QUICK else 2

HEADERS = ["kind", "family", "n", "partitions", "workers",
           "serial wall (s)", "parallel wall (s)", "speedup x"]


def _instances(family):
    return [shape_instance(family, N, seed=100 + 7 * i) for i in range(K)]


def _serial(graphs):
    return [mst_sensitivity(g, engine="local", config=MPCConfig())
            for g in graphs]


def _assert_partitions_bit_identical(outs, serial):
    for o, s in zip(outs, serial):
        assert o.ok, o.error
        np.testing.assert_array_equal(o.value["sensitivity"], s.sensitivity)
        np.testing.assert_array_equal(o.value["mc"], s.mc)
        np.testing.assert_array_equal(o.value["pathmax"], s.pathmax)
        assert o.value["report"] == s.report.to_dict(), (
            "a partition's CostReport diverged from serial execution"
        )


def _sweep():
    pool = get_pool()
    pool.ping()  # warm the pool: spawn cost is not the executor's cost
    rows = []
    total = [0.0, 0.0]  # serial, parallel
    for family in FAMILIES:
        graphs = _instances(family)
        serial_best = parallel_best = float("inf")
        serial = outs = None
        for _ in range(REPS):
            t0 = time.perf_counter()
            serial = _serial(graphs)
            serial_best = min(serial_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            outs = run_partitions(graphs, kind="sensitivity",
                                  engine="local", pool=pool)
            parallel_best = min(parallel_best, time.perf_counter() - t0)
        _assert_partitions_bit_identical(outs, serial)
        total[0] += serial_best
        total[1] += parallel_best
        rows.append(("sensitivity", family, N, K, pool.workers,
                     round(serial_best, 3), round(parallel_best, 3),
                     round(serial_best / parallel_best, 2)))
    return rows, total[0] / total[1]


def _gate(speedup):
    return speedup >= MIN_SPEEDUP, speedup


def test_e15_table(table_sink, benchmark):
    with timed() as t:
        rows, speedup = _sweep()
    g = shape_instance(FAMILIES[0], N, seed=100)
    benchmark.pedantic(
        lambda: run_partitions([g], kind="sensitivity", engine="local"),
        rounds=2, iterations=1,
    )
    emit_json("E15", {"n": N, "families": list(FAMILIES), "partitions": K,
                      "cores": CORES, "workers": get_pool().workers,
                      "min_speedup": round(MIN_SPEEDUP, 3), "reps": REPS},
              HEADERS, rows, wall_s=t.wall_s,
              agg_speedup=round(speedup, 3))
    table_sink(
        "E15: process-parallel executor, workload partitions vs serial "
        "(outputs and per-partition CostReports bit-identical, asserted)",
        render_table(HEADERS, rows),
    )
    ok, got = _gate(speedup)
    assert ok, (
        f"partitioned speedup {got:.2f}x is below the cores/2 floor "
        f"({MIN_SPEEDUP:.2f}x on {CORES} cores) — executor overhead "
        f"is eating the parallelism"
    )


if __name__ == "__main__":
    rows, speedup = _sweep()
    print(render_table(HEADERS, rows))
    ok, got = _gate(speedup)
    print(f"speedup gate (cores/2 = {MIN_SPEEDUP:.2f}x on {CORES} cores): "
          f"aggregate {got:.2f}x -> {'PASS' if ok else 'FAIL'}")
    raise SystemExit(0 if ok else 1)
