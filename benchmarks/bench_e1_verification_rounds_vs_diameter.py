"""E1 — Theorem 3.1: verification rounds scale with log D_T, not log n.

Sweep: backbone-tree MST instances, n fixed, D_T in {8..2048}, m = 3n.
Columns: the paper-contributed core rounds (with cited substrates
assumed, `oracle` column) and end-to-end rounds including our substitute
substrates (`full`), against the Θ(log n)-shaped recompute baseline.
Expected shape: `core(D)` ≈ a·log2(D)+b; baseline flat-ish and larger
than core at low D.
"""

import pytest

from repro.analysis import fit_log, render_table
from repro.baselines import verify_by_recompute_mpc
from repro.core.verification import verify_mst
from repro.mpc import LocalRuntime

from common import DIAMETERS, N_DEFAULT, diameter_instance, emit_json, timed

HEADERS = ["D_T", "core rounds (Thm 3.1)", "end-to-end rounds",
           "recompute baseline rounds"]


def _sweep():
    rows = []
    for d in DIAMETERS:
        g = diameter_instance(N_DEFAULT, d)
        orc = verify_mst(g, oracle_labels=True)
        assert orc.is_mst
        full = verify_mst(g)
        rt = LocalRuntime()
        assert verify_by_recompute_mpc(rt, g)
        rows.append((d, orc.core_rounds, full.rounds, rt.rounds))
    return rows


def test_e1_table(table_sink, benchmark):
    with timed() as t:
        rows = _sweep()
    g = diameter_instance(N_DEFAULT, DIAMETERS[2])
    benchmark.pedantic(
        lambda: verify_mst(g, oracle_labels=True), rounds=3, iterations=1
    )
    fit = fit_log([r[0] for r in rows], [r[1] for r in rows])
    emit_json(
        "E1", {"n": N_DEFAULT, "diameters": list(DIAMETERS), "m_factor": 3},
        HEADERS, rows, wall_s=t.wall_s,
        fit={"slope": fit.slope, "intercept": fit.intercept, "r2": fit.r2},
    )
    table_sink(
        "E1: verification rounds vs D_T  "
        f"(n={N_DEFAULT}, m=3n; core fit: {fit.slope:.1f}*log2(D)"
        f"{fit.intercept:+.1f}, R2={fit.r2:.3f})",
        render_table(HEADERS, rows),
    )
    assert fit.r2 > 0.9
    core = [r[1] for r in rows]
    assert core == sorted(core)
