"""E3 — optimal utilisation: peak global memory is linear, while the §3
strawman (full path collection, no clustering) needs Θ(n·D_T) words.

Sweep: n fixed, D_T grows; column ratio = naive / pipeline peak words.
Expected shape: pipeline flat (linear in m+n), naive growing ~linearly
with D_T.
"""

import pytest

from repro.analysis import render_table
from repro.baselines import naive_verify_mst
from repro.core.verification import verify_mst
from repro.mpc import LocalRuntime

from common import QUICK, diameter_instance, emit_json, scaled, timed

N = scaled(2048)
DIAMS = (8, 64, 200) if QUICK else (8, 64, 512, 1500)
HEADERS = ["D_T", "pipeline (Thm 3.1)", "naive path-collection (§3)",
           "naive/pipeline"]


def _sweep():
    rows = []
    for d in DIAMS:
        g = diameter_instance(N, d)
        pipe = verify_mst(g, oracle_labels=True)
        rt = LocalRuntime()
        naive = naive_verify_mst(rt, g)
        assert pipe.is_mst and naive.is_mst
        rows.append((
            d,
            pipe.report.peak_global_words,
            naive.peak_words,
            naive.peak_words / pipe.report.peak_global_words,
        ))
    return rows


def test_e3_table(table_sink, benchmark):
    with timed() as t:
        rows = _sweep()
    g = diameter_instance(N, DIAMS[2])
    rt = LocalRuntime()
    benchmark.pedantic(lambda: naive_verify_mst(LocalRuntime(), g),
                       rounds=3, iterations=1)
    emit_json("E3", {"n": N, "diameters": list(DIAMS)}, HEADERS, rows,
              wall_s=t.wall_s)
    table_sink(
        f"E3: peak global memory (words) vs D_T  (n={N}, m=3n)",
        render_table(HEADERS, rows),
    )
    pipeline = [r[1] for r in rows]
    naive = [r[2] for r in rows]
    # pipeline linear: stays within a constant factor across the sweep
    assert max(pipeline) <= 3 * min(pipeline)
    # naive superlinear in D_T
    assert naive[-1] > 10 * naive[0]
